// Package sim implements PIER's Simulation Environment (paper §3.1.4,
// Figure 4): a discrete-event simulator capable of running thousands of
// virtual nodes on one physical machine, each with its own logical clock
// and network interface, while executing the same program code as the
// Physical Runtime Environment.
//
// By default one Main Scheduler and one priority queue serve all nodes;
// events are annotated with the virtual node that must handle them and
// demultiplexed on dispatch. For large deployments the scheduler can be
// sharded across worker goroutines with SetWorkers (see sharded.go): the
// node population is partitioned into per-shard event heaps that advance
// in conservative time windows bounded by the topology's minimum
// latency. Both modes are deterministic for a given seed, and the
// sharded mode produces identical results for any worker count.
//
// The network is simulated at message-level granularity (one simulated
// packet per application message), with pluggable topology and
// congestion models. Matching the paper, the simulator does not drop
// messages by default (loss can be enabled) but does simulate complete
// node failures.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pier/internal/vri"
)

// event is one entry in a scheduler's priority queue. Dispatch order is
// the total order (at, src, seq): src is the scheduling source's node id
// (0 for environment-level sources) and seq a per-source counter, so the
// order is deterministic and — in sharded mode — independent of how many
// workers raced to enqueue.
type event struct {
	at        time.Time
	src       uint64
	seq       uint64
	node      *Node // nil for environment-level events
	fn        func()
	cancelled bool
}

func (ev *event) before(other *event) bool {
	if !ev.at.Equal(other.at) {
		return ev.at.Before(other.at)
	}
	if ev.src != other.src {
		return ev.src < other.src
	}
	return ev.seq < other.seq
}

type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Options configure an Env.
type Options struct {
	// Seed drives all randomness in the environment, making runs
	// reproducible. Node random streams derive from it.
	Seed int64
	// Topology supplies pairwise latency. Defaults to a Star topology
	// with 20–60 ms access latency.
	Topology Topology
	// Congestion schedules message departures on access links. Defaults
	// to NoCongestion.
	Congestion CongestionModel
	// LossRate drops each message independently with this probability.
	// The paper's simulator delivers all messages; this defaults to 0.
	// In sharded mode the loss decision draws from the sender's random
	// stream instead of the environment's, so it stays deterministic.
	LossRate float64
	// AckTimeout is how long the transport waits before reporting a
	// failed delivery (dead destination or lost message) to the sender.
	AckTimeout time.Duration
	// Start is the virtual time origin. Defaults to Unix epoch.
	Start time.Time
	// Trace, if non-nil, receives a line per interesting event. Under
	// the sharded scheduler trace lines from different shards interleave
	// in wall-clock order, so trace OUTPUT ordering is excluded from the
	// determinism guarantee (simulation results remain bit-identical).
	Trace func(string)
}

func (o *Options) fill() {
	if o.Topology == nil {
		o.Topology = NewStar(StarConfig{MinAccess: 20 * time.Millisecond, MaxAccess: 60 * time.Millisecond, Seed: o.Seed})
	}
	if o.Congestion == nil {
		o.Congestion = NoCongestion{}
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.Start.IsZero() {
		o.Start = time.Unix(0, 0).UTC()
	}
}

// Env is the Simulation Environment: virtual clock, Main Scheduler, node
// demultiplexer, and network model.
type Env struct {
	opts   Options
	now    time.Time
	seq    uint64 // environment-source event counter
	queue  eventHeap
	nodes  map[vri.Addr]*Node
	nextID uint64
	rng    *rand.Rand

	// Cumulative counters for events executed, messages sent, and
	// payload bytes sent in environment context. In sharded mode each
	// shard keeps its own counters; Stats sums them.
	events uint64
	msgs   uint64
	bytes  uint64

	// perNode tallies traffic per node for in/out-bandwidth analyses
	// (e.g. the hierarchical-aggregation ablation measures root
	// in-bandwidth). Entries are created at Spawn so sharded workers
	// only ever read the map.
	perNode map[vri.Addr]*NodeTraffic

	// par is non-nil when the sharded scheduler is selected via
	// SetWorkers. See sharded.go.
	par *parEngine

	traceMu sync.Mutex
}

// NodeTraffic is one node's cumulative message accounting.
type NodeTraffic struct {
	MsgsIn, MsgsOut   uint64
	BytesIn, BytesOut uint64
}

// NewEnv creates a simulation environment.
func NewEnv(opts Options) *Env {
	opts.fill()
	return &Env{
		opts:    opts,
		now:     opts.Start,
		nodes:   make(map[vri.Addr]*Node),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		perNode: make(map[vri.Addr]*NodeTraffic),
	}
}

// Now returns the current virtual time. Inside a node's event handler
// under the sharded scheduler, use the node's Now instead: the
// environment clock only advances at window barriers there.
func (e *Env) Now() time.Time { return e.now }

// Rand returns the environment-level random source (used by workload
// generators and churn injection; nodes have their own streams). It must
// only be used from driver code, never from node event handlers.
func (e *Env) Rand() *rand.Rand { return e.rng }

// SetNow rebases the virtual clock to t. It is the restore half of
// checkpoint/restore: a warm-started environment continues at the
// virtual instant its checkpoint was taken, so soft-state expiries
// rebased to relative durations re-anchor consistently and nodes
// spawned afterwards start with the rebased clock. It may only be
// called on an empty environment — before any Spawn, with no events
// pending — because existing node clocks and event timestamps are not
// rewritten.
func (e *Env) SetNow(t time.Time) {
	if !e.AtBarrier() {
		panic("sim: SetNow called from inside a sharded window")
	}
	if len(e.nodes) != 0 {
		panic("sim: SetNow after Spawn; rebase the clock before populating the environment")
	}
	if len(e.queue) != 0 {
		panic("sim: SetNow with pending events")
	}
	if e.par != nil {
		for _, sh := range e.par.shards {
			if len(sh.heap) != 0 {
				panic("sim: SetNow with pending events")
			}
		}
	}
	e.now = t
}

// AtBarrier reports whether the environment is at a driver barrier: the
// sequential scheduler between dispatches, or the sharded scheduler with
// every worker parked (no window executing). Driver-only operations —
// checkpointing node state, Spawn, Fail, Env.Schedule — require it.
func (e *Env) AtBarrier() bool { return e.par == nil || !e.par.inWindow }

// Stats reports cumulative counters: events dispatched, messages sent,
// payload bytes sent.
func (e *Env) Stats() (events, msgs, bytes uint64) {
	events, msgs, bytes = e.events, e.msgs, e.bytes
	if e.par != nil {
		for _, sh := range e.par.shards {
			events += sh.events
			msgs += sh.msgs
			bytes += sh.bytes
		}
	}
	return events, msgs, bytes
}

// Traffic returns the cumulative per-node traffic counters for addr
// (zero-valued if the node never communicated).
func (e *Env) Traffic(addr vri.Addr) NodeTraffic {
	if t := e.perNode[addr]; t != nil {
		return *t
	}
	return NodeTraffic{}
}

// scheduleFrom enqueues fn to run at time at on behalf of target (nil =
// environment), attributed to scheduling source src (nil = environment).
// The source determines the deterministic tie-break key and — in sharded
// mode — which shard's structures the event is routed through. Both
// scheduler modes key events identically, so their dispatch orders (and
// therefore all simulation results) coincide exactly.
func (e *Env) scheduleFrom(src *Node, at time.Time, target *Node, fn func()) *event {
	if e.par == nil {
		if at.Before(e.now) {
			at = e.now
		}
		ev := &event{at: at, node: target, fn: fn}
		if src != nil {
			src.srcSeq++
			ev.src, ev.seq = src.id, src.srcSeq
		} else {
			e.seq++
			ev.seq = e.seq
		}
		heap.Push(&e.queue, ev)
		return ev
	}
	return e.par.schedule(e, src, at, target, fn)
}

// Schedule enqueues an environment-level event after delay. It is used by
// drivers (workload generators, churn scripts) that are not themselves
// virtual nodes. Under the sharded scheduler such events run alone at
// window barriers and may therefore touch cross-node driver state; they
// must not be scheduled from inside node event handlers there (use the
// node's Schedule for that).
func (e *Env) Schedule(delay time.Duration, fn func()) vri.Timer {
	if e.par != nil && e.par.inWindow {
		panic("sim: Env.Schedule called from a node event under the sharded scheduler; use Node.Schedule")
	}
	ev := e.scheduleFrom(nil, e.now.Add(delay), nil, fn)
	return timerHandle{ev}
}

type timerHandle struct{ ev *event }

func (t timerHandle) Cancel() { t.ev.cancelled = true }

// Step dispatches the single next event, advancing virtual time. It
// returns false when the queue is empty. Step requires the sequential
// scheduler (the default); use Run or Drain with the sharded one.
func (e *Env) Step() bool {
	if e.par != nil {
		panic("sim: Step requires the sequential scheduler; call SetWorkers(0) first")
	}
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		if ev.node != nil {
			if !ev.node.alive {
				continue // events for failed nodes are discarded
			}
			ev.node.now = ev.at
		}
		e.events++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty or virtual time would
// exceed the given duration from the current time.
func (e *Env) Run(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// RunUntil dispatches events until the queue is empty or the next event
// is after deadline; virtual time ends at deadline.
func (e *Env) RunUntil(deadline time.Time) {
	if e.par != nil {
		e.par.run(e, deadline, false)
		return
	}
	for len(e.queue) > 0 {
		// Peek without popping. Cancelled events and events for failed
		// nodes are discarded here rather than left to Step: Step skips
		// them and dispatches the next live event, so a skippable head
		// with at <= deadline would let an event PAST the deadline run
		// and drag the clock beyond it — a boundary overrun the sharded
		// scheduler (correctly) never makes.
		next := e.queue[0]
		if next.cancelled || (next.node != nil && !next.node.alive) {
			heap.Pop(&e.queue)
			continue
		}
		if next.at.After(deadline) {
			break
		}
		e.Step()
		if e.events%pruneEvery == 0 {
			e.pruneCongestion(e.now)
		}
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
	e.pruneCongestion(e.now)
}

// Drain dispatches every remaining event regardless of time. Useful in
// tests that want quiescence.
func (e *Env) Drain() {
	if e.par != nil {
		e.par.run(e, time.Time{}, true)
		return
	}
	for e.Step() {
	}
	e.pruneCongestion(e.now)
}

// pruneEvery is how many dispatched events may pass between congestion
// garbage-collection sweeps during a long uninterrupted run.
const pruneEvery = 1 << 16

// pruneCongestion garbage-collects drained per-link congestion state.
// It must only be called from driver context, with `before` no later
// than any pending or future event time. In sequential mode e.now
// qualifies (schedules clamp to it); the sharded engine passes the
// minimum pending event time across shards instead, since a shard's
// clock may trail the environment clock by up to one lookahead window.
func (e *Env) pruneCongestion(before time.Time) {
	if p, ok := e.opts.Congestion.(Prunable); ok {
		p.Prune(before)
	}
}

// Spawn creates a live virtual node with the given name and returns its
// runtime. Names must be unique among live and failed nodes. Under the
// sharded scheduler, Spawn may only be called from driver code (between
// runs or inside environment-level events), never from node handlers.
func (e *Env) Spawn(name string) *Node {
	if e.par != nil && e.par.inWindow {
		panic("sim: Spawn called from a node event under the sharded scheduler")
	}
	addr := vri.Addr(name)
	if _, ok := e.nodes[addr]; ok {
		panic(fmt.Sprintf("sim: duplicate node %q", name))
	}
	e.nextID++
	n := &Node{
		env:      e,
		addr:     addr,
		id:       e.nextID,
		alive:    true,
		now:      e.now,
		handlers: make(map[vri.Port]vri.MessageHandler),
		streams:  make(map[vri.Port]vri.StreamHandler),
		rng:      rand.New(rand.NewSource(e.opts.Seed ^ int64(fnvHash(name)))),
		traf:     &NodeTraffic{},
	}
	if e.par != nil {
		n.shard = int((n.id - 1) % uint64(e.par.k))
	}
	e.nodes[addr] = n
	e.perNode[addr] = n.traf
	e.opts.Topology.Register(addr)
	return n
}

// SpawnN creates n nodes named prefix-0..prefix-(n-1).
func (e *Env) SpawnN(prefix string, n int) []*Node {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = e.Spawn(fmt.Sprintf("%s-%d", prefix, i))
	}
	return nodes
}

// Node returns the node with the given address, or nil.
func (e *Env) Node(addr vri.Addr) *Node {
	return e.nodes[addr]
}

// Fail kills a node: pending and future events for it are discarded, its
// handlers are dropped, and messages addressed to it fail delivery. This
// models the paper's "complete node failures". Under the sharded
// scheduler, Fail may only be called from driver code.
func (e *Env) Fail(addr vri.Addr) {
	if e.par != nil && e.par.inWindow {
		panic("sim: Fail called from a node event under the sharded scheduler")
	}
	n := e.nodes[addr]
	if n == nil || !n.alive {
		return
	}
	n.alive = false
	for _, c := range n.conns {
		c.failPeer()
	}
	n.conns = nil
	n.handlers = make(map[vri.Port]vri.MessageHandler)
	n.streams = make(map[vri.Port]vri.StreamHandler)
	e.trace(e.now, "FAIL %s", addr)
}

// Alive reports whether the node exists and has not failed.
func (e *Env) Alive(addr vri.Addr) bool {
	n := e.nodes[addr]
	return n != nil && n.alive
}

// LiveAddrs returns the addresses of all live nodes (order unspecified).
func (e *Env) LiveAddrs() []vri.Addr {
	out := make([]vri.Addr, 0, len(e.nodes))
	for a, n := range e.nodes {
		if n.alive {
			out = append(out, a)
		}
	}
	return out
}

func (e *Env) trace(at time.Time, format string, args ...any) {
	if e.opts.Trace != nil {
		e.traceMu.Lock()
		e.opts.Trace(fmt.Sprintf("%s "+format, append([]any{at.Format("15:04:05.000")}, args...)...))
		e.traceMu.Unlock()
	}
}

// deliver routes a datagram through the network model. It computes the
// departure time from the congestion model, adds propagation latency from
// the topology, and schedules the receive event on the destination and
// the ack event on the source. It always executes in src's context: on
// src's shard worker during a window, or in driver context otherwise.
func (e *Env) deliver(src *Node, dst vri.Addr, dstPort vri.Port, payload []byte, ack vri.AckFunc) {
	now := src.timeNow()
	if e.par != nil && e.par.inWindow {
		sh := e.par.shards[src.shard]
		sh.msgs++
		sh.bytes += uint64(len(payload))
	} else {
		e.msgs++
		e.bytes += uint64(len(payload))
	}
	src.traf.MsgsOut++
	src.traf.BytesOut += uint64(len(payload))
	size := len(payload) + 48 // crude header overhead
	departure := e.opts.Congestion.Departure(now, src.addr, dst, size)
	latency := e.opts.Topology.Latency(src.addr, dst)
	arrival := departure.Add(latency)

	var lost bool
	if e.opts.LossRate > 0 {
		// The environment rng is not safe under sharded workers; draw
		// from the sender's stream there (deterministic either way).
		if e.par != nil {
			lost = src.rng.Float64() < e.opts.LossRate
		} else {
			lost = e.rng.Float64() < e.opts.LossRate
		}
	}
	dstNode := e.nodes[dst]
	if lost || dstNode == nil || !dstNode.alive {
		if ack != nil {
			e.scheduleFrom(src, now.Add(e.opts.AckTimeout), src, func() { ack(false) })
		}
		return
	}
	e.scheduleFrom(src, arrival, dstNode, func() {
		dstNode.traf.MsgsIn++
		dstNode.traf.BytesIn += uint64(len(payload))
		h := dstNode.handlers[dstPort]
		if h != nil {
			h(src.addr, payload)
		}
		// The ack races back over the reverse path. If the sender has
		// failed meanwhile the ack event is silently discarded.
		if ack != nil {
			back := e.opts.Topology.Latency(dst, src.addr)
			e.scheduleFrom(dstNode, dstNode.timeNow().Add(back), src, func() { ack(true) })
		}
	})
}

func fnvHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
