// Package sim implements PIER's Simulation Environment (paper §3.1.4,
// Figure 4): a discrete-event simulator capable of running thousands of
// virtual nodes on one physical machine, each with its own logical clock
// and network interface, while executing the same program code as the
// Physical Runtime Environment.
//
// One Main Scheduler and one priority queue serve all nodes; events are
// annotated with the virtual node that must handle them and demultiplexed
// on dispatch. The network is simulated at message-level granularity (one
// simulated packet per application message), with pluggable topology and
// congestion models. Matching the paper, the simulator does not drop
// messages by default (loss can be enabled) but does simulate complete
// node failures.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"pier/internal/vri"
)

// event is one entry in the Main Scheduler's priority queue.
type event struct {
	at        time.Time
	seq       uint64 // tie-break so dispatch order is deterministic
	node      *Node  // nil for environment-level events
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Options configure an Env.
type Options struct {
	// Seed drives all randomness in the environment, making runs
	// reproducible. Node random streams derive from it.
	Seed int64
	// Topology supplies pairwise latency. Defaults to a Star topology
	// with 20–60 ms access latency.
	Topology Topology
	// Congestion schedules message departures on access links. Defaults
	// to NoCongestion.
	Congestion CongestionModel
	// LossRate drops each message independently with this probability.
	// The paper's simulator delivers all messages; this defaults to 0.
	LossRate float64
	// AckTimeout is how long the transport waits before reporting a
	// failed delivery (dead destination or lost message) to the sender.
	AckTimeout time.Duration
	// Start is the virtual time origin. Defaults to Unix epoch.
	Start time.Time
	// Trace, if non-nil, receives a line per interesting event.
	Trace func(string)
}

func (o *Options) fill() {
	if o.Topology == nil {
		o.Topology = NewStar(StarConfig{MinAccess: 20 * time.Millisecond, MaxAccess: 60 * time.Millisecond, Seed: o.Seed})
	}
	if o.Congestion == nil {
		o.Congestion = NoCongestion{}
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.Start.IsZero() {
		o.Start = time.Unix(0, 0).UTC()
	}
}

// Env is the Simulation Environment: virtual clock, Main Scheduler, node
// demultiplexer, and network model.
type Env struct {
	opts   Options
	now    time.Time
	seq    uint64
	queue  eventHeap
	nodes  map[vri.Addr]*Node
	rng    *rand.Rand
	events uint64 // total dispatched, for stats
	msgs   uint64 // total messages sent
	bytes  uint64 // total payload bytes sent

	// perNode tallies traffic per node for in/out-bandwidth analyses
	// (e.g. the hierarchical-aggregation ablation measures root
	// in-bandwidth).
	perNode map[vri.Addr]*NodeTraffic
}

// NodeTraffic is one node's cumulative message accounting.
type NodeTraffic struct {
	MsgsIn, MsgsOut   uint64
	BytesIn, BytesOut uint64
}

// NewEnv creates a simulation environment.
func NewEnv(opts Options) *Env {
	opts.fill()
	return &Env{
		opts:    opts,
		now:     opts.Start,
		nodes:   make(map[vri.Addr]*Node),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		perNode: make(map[vri.Addr]*NodeTraffic),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Time { return e.now }

// Rand returns the environment-level random source (used by workload
// generators and churn injection; nodes have their own streams).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Stats reports cumulative counters: events dispatched, messages sent,
// payload bytes sent.
func (e *Env) Stats() (events, msgs, bytes uint64) { return e.events, e.msgs, e.bytes }

// Traffic returns the cumulative per-node traffic counters for addr
// (zero-valued if the node never communicated).
func (e *Env) Traffic(addr vri.Addr) NodeTraffic {
	if t := e.perNode[addr]; t != nil {
		return *t
	}
	return NodeTraffic{}
}

func (e *Env) traffic(addr vri.Addr) *NodeTraffic {
	t := e.perNode[addr]
	if t == nil {
		t = &NodeTraffic{}
		e.perNode[addr] = t
	}
	return t
}

// schedule enqueues fn to run at time at on behalf of node (nil = env).
func (e *Env) schedule(at time.Time, node *Node, fn func()) *event {
	if at.Before(e.now) {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, node: node, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule enqueues an environment-level event after delay. It is used by
// drivers (workload generators, churn scripts) that are not themselves
// virtual nodes.
func (e *Env) Schedule(delay time.Duration, fn func()) vri.Timer {
	ev := e.schedule(e.now.Add(delay), nil, fn)
	return timerHandle{ev}
}

type timerHandle struct{ ev *event }

func (t timerHandle) Cancel() { t.ev.cancelled = true }

// Step dispatches the single next event, advancing virtual time. It
// returns false when the queue is empty.
func (e *Env) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		if ev.node != nil && !ev.node.alive {
			continue // events for failed nodes are discarded
		}
		e.events++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty or virtual time would
// exceed the given duration from the current time.
func (e *Env) Run(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// RunUntil dispatches events until the queue is empty or the next event
// is after deadline; virtual time ends at deadline.
func (e *Env) RunUntil(deadline time.Time) {
	for len(e.queue) > 0 {
		// Peek without popping.
		next := e.queue[0]
		if next.at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// Drain dispatches every remaining event regardless of time. Useful in
// tests that want quiescence.
func (e *Env) Drain() {
	for e.Step() {
	}
}

// Spawn creates a live virtual node with the given name and returns its
// runtime. Names must be unique among live and failed nodes.
func (e *Env) Spawn(name string) *Node {
	addr := vri.Addr(name)
	if _, ok := e.nodes[addr]; ok {
		panic(fmt.Sprintf("sim: duplicate node %q", name))
	}
	n := &Node{
		env:      e,
		addr:     addr,
		alive:    true,
		handlers: make(map[vri.Port]vri.MessageHandler),
		streams:  make(map[vri.Port]vri.StreamHandler),
		rng:      rand.New(rand.NewSource(e.opts.Seed ^ int64(fnvHash(name)))),
	}
	e.nodes[addr] = n
	e.opts.Topology.Register(addr)
	return n
}

// SpawnN creates n nodes named prefix-0..prefix-(n-1).
func (e *Env) SpawnN(prefix string, n int) []*Node {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = e.Spawn(fmt.Sprintf("%s-%d", prefix, i))
	}
	return nodes
}

// Node returns the node with the given address, or nil.
func (e *Env) Node(addr vri.Addr) *Node {
	return e.nodes[addr]
}

// Fail kills a node: pending and future events for it are discarded, its
// handlers are dropped, and messages addressed to it fail delivery. This
// models the paper's "complete node failures".
func (e *Env) Fail(addr vri.Addr) {
	n := e.nodes[addr]
	if n == nil || !n.alive {
		return
	}
	n.alive = false
	for _, c := range n.conns {
		c.failPeer()
	}
	n.conns = nil
	n.handlers = make(map[vri.Port]vri.MessageHandler)
	n.streams = make(map[vri.Port]vri.StreamHandler)
	e.trace("FAIL %s", addr)
}

// Alive reports whether the node exists and has not failed.
func (e *Env) Alive(addr vri.Addr) bool {
	n := e.nodes[addr]
	return n != nil && n.alive
}

// LiveAddrs returns the addresses of all live nodes (order unspecified).
func (e *Env) LiveAddrs() []vri.Addr {
	out := make([]vri.Addr, 0, len(e.nodes))
	for a, n := range e.nodes {
		if n.alive {
			out = append(out, a)
		}
	}
	return out
}

func (e *Env) trace(format string, args ...any) {
	if e.opts.Trace != nil {
		e.opts.Trace(fmt.Sprintf("%s "+format, append([]any{e.now.Format("15:04:05.000")}, args...)...))
	}
}

// deliver routes a datagram through the network model. It computes the
// departure time from the congestion model, adds propagation latency from
// the topology, and schedules the receive event on the destination and
// the ack event on the source.
func (e *Env) deliver(src *Node, dst vri.Addr, dstPort vri.Port, payload []byte, ack vri.AckFunc) {
	e.msgs++
	e.bytes += uint64(len(payload))
	out := e.traffic(src.addr)
	out.MsgsOut++
	out.BytesOut += uint64(len(payload))
	size := len(payload) + 48 // crude header overhead
	departure := e.opts.Congestion.Departure(e.now, src.addr, dst, size)
	latency := e.opts.Topology.Latency(src.addr, dst)
	arrival := departure.Add(latency)

	lost := e.opts.LossRate > 0 && e.rng.Float64() < e.opts.LossRate
	dstNode := e.nodes[dst]
	if lost || dstNode == nil || !dstNode.alive {
		if ack != nil {
			e.schedule(e.now.Add(e.opts.AckTimeout), src, func() { ack(false) })
		}
		return
	}
	e.schedule(arrival, dstNode, func() {
		in := e.traffic(dst)
		in.MsgsIn++
		in.BytesIn += uint64(len(payload))
		h := dstNode.handlers[dstPort]
		if h != nil {
			h(src.addr, payload)
		}
		// The ack races back over the reverse path. If the sender has
		// failed meanwhile the ack event is silently discarded.
		if ack != nil {
			back := e.opts.Topology.Latency(dst, src.addr)
			e.schedule(e.now.Add(back), src, func() { ack(true) })
		}
	})
}

func fnvHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
