package sim

import (
	"testing"
	"time"
)

var t0 = time.Unix(0, 0).UTC()

func TestNoCongestionDepartsImmediately(t *testing.T) {
	var m NoCongestion
	if got := m.Departure(t0, "a", "b", 1_000_000); !got.Equal(t0) {
		t.Errorf("departure = %v, want %v", got, t0)
	}
}

func TestFIFOQueueSerializesBacklog(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	// Two 500-byte messages issued at the same instant: the second waits
	// for the first.
	d1 := m.Departure(t0, "a", "b", 500)
	d2 := m.Departure(t0, "a", "c", 500)
	if want := t0.Add(500 * time.Millisecond); !d1.Equal(want) {
		t.Errorf("first departure = %v, want %v", d1, want)
	}
	if want := t0.Add(time.Second); !d2.Equal(want) {
		t.Errorf("second departure = %v, want %v", d2, want)
	}
}

func TestFIFOQueueIndependentSources(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	m.Departure(t0, "a", "b", 100_000) // big backlog on a
	d := m.Departure(t0, "x", "b", 500)
	if want := t0.Add(500 * time.Millisecond); !d.Equal(want) {
		t.Errorf("other source delayed by a's backlog: %v, want %v", d, want)
	}
}

func TestFIFOQueueDrainsAfterIdle(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	m.Departure(t0, "a", "b", 500)
	later := t0.Add(10 * time.Second)
	d := m.Departure(later, "a", "b", 500)
	if want := later.Add(500 * time.Millisecond); !d.Equal(want) {
		t.Errorf("departure after idle = %v, want %v", d, want)
	}
}

func TestFairQueueSharesBandwidthAcrossFlows(t *testing.T) {
	m := &FairQueue{BytesPerSecond: 1000}
	// Flow a->b builds a backlog; flow a->c then sends a small message.
	m.Departure(t0, "a", "b", 10_000) // 10s of backlog on flow b
	dSmall := m.Departure(t0, "a", "c", 500)
	// Under FIFO this would wait 10s; under fair queuing the light flow
	// pays only its fair-share transmission time (500B at 500 B/s = 1s).
	if dSmall.Sub(t0) > 2*time.Second {
		t.Errorf("light flow delayed %v; fair queuing should isolate it from the bulk flow", dSmall.Sub(t0))
	}
}

func TestFairQueueSingleFlowGetsFullBandwidth(t *testing.T) {
	m := &FairQueue{BytesPerSecond: 1000}
	d := m.Departure(t0, "a", "b", 1000)
	if want := t0.Add(time.Second); !d.Equal(want) {
		t.Errorf("sole flow departure = %v, want %v", d, want)
	}
}

func TestFairQueueBulkFlowSlowerThanFIFOWhenShared(t *testing.T) {
	fifo := &FIFOQueue{BytesPerSecond: 1000}
	fair := &FairQueue{BytesPerSecond: 1000}
	// Start a light competing flow on both, then a bulk message.
	fifo.Departure(t0, "a", "c", 100)
	fair.Departure(t0, "a", "c", 100)
	dFIFO := fifo.Departure(t0, "a", "b", 5000)
	dFair := fair.Departure(t0, "a", "b", 5000)
	if !dFair.After(dFIFO) {
		t.Errorf("bulk under fair queuing (%v) should depart later than under FIFO (%v) while sharing", dFair, dFIFO)
	}
}
