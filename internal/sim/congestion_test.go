package sim

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/vri"
)

var t0 = time.Unix(0, 0).UTC()

func TestNoCongestionDepartsImmediately(t *testing.T) {
	var m NoCongestion
	if got := m.Departure(t0, "a", "b", 1_000_000); !got.Equal(t0) {
		t.Errorf("departure = %v, want %v", got, t0)
	}
}

func TestFIFOQueueSerializesBacklog(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	// Two 500-byte messages issued at the same instant: the second waits
	// for the first.
	d1 := m.Departure(t0, "a", "b", 500)
	d2 := m.Departure(t0, "a", "c", 500)
	if want := t0.Add(500 * time.Millisecond); !d1.Equal(want) {
		t.Errorf("first departure = %v, want %v", d1, want)
	}
	if want := t0.Add(time.Second); !d2.Equal(want) {
		t.Errorf("second departure = %v, want %v", d2, want)
	}
}

func TestFIFOQueueIndependentSources(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	m.Departure(t0, "a", "b", 100_000) // big backlog on a
	d := m.Departure(t0, "x", "b", 500)
	if want := t0.Add(500 * time.Millisecond); !d.Equal(want) {
		t.Errorf("other source delayed by a's backlog: %v, want %v", d, want)
	}
}

func TestFIFOQueueDrainsAfterIdle(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	m.Departure(t0, "a", "b", 500)
	later := t0.Add(10 * time.Second)
	d := m.Departure(later, "a", "b", 500)
	if want := later.Add(500 * time.Millisecond); !d.Equal(want) {
		t.Errorf("departure after idle = %v, want %v", d, want)
	}
}

func TestFairQueueSharesBandwidthAcrossFlows(t *testing.T) {
	m := &FairQueue{BytesPerSecond: 1000}
	// Flow a->b builds a backlog; flow a->c then sends a small message.
	m.Departure(t0, "a", "b", 10_000) // 10s of backlog on flow b
	dSmall := m.Departure(t0, "a", "c", 500)
	// Under FIFO this would wait 10s; under fair queuing the light flow
	// pays only its fair-share transmission time (500B at 500 B/s = 1s).
	if dSmall.Sub(t0) > 2*time.Second {
		t.Errorf("light flow delayed %v; fair queuing should isolate it from the bulk flow", dSmall.Sub(t0))
	}
}

func TestFairQueueSingleFlowGetsFullBandwidth(t *testing.T) {
	m := &FairQueue{BytesPerSecond: 1000}
	d := m.Departure(t0, "a", "b", 1000)
	if want := t0.Add(time.Second); !d.Equal(want) {
		t.Errorf("sole flow departure = %v, want %v", d, want)
	}
}

func TestFIFOQueuePrunesDrainedLinks(t *testing.T) {
	m := &FIFOQueue{BytesPerSecond: 1000}
	for i := 0; i < 500; i++ {
		m.Departure(t0, vri.Addr(fmt.Sprintf("src-%d", i)), "dst", 100)
	}
	if got := m.backlogSize(); got != 500 {
		t.Fatalf("backlog = %d links, want 500", got)
	}
	// Every link drained after 100ms; a sweep at t0+1s must drop them all.
	m.Prune(t0.Add(time.Second))
	if got := m.backlogSize(); got != 0 {
		t.Errorf("backlog after prune = %d links, want 0 (unbounded growth regression)", got)
	}
	// A link still busy past the sweep threshold survives, and its backlog
	// still delays the next message.
	m.Departure(t0.Add(time.Second), "busy", "dst", 5000) // drains at t+6s
	m.Prune(t0.Add(2 * time.Second))
	if got := m.backlogSize(); got != 1 {
		t.Fatalf("busy link pruned: backlog = %d, want 1", got)
	}
	d := m.Departure(t0.Add(2*time.Second), "busy", "dst", 1000)
	if want := t0.Add(7 * time.Second); !d.Equal(want) {
		t.Errorf("departure after partial prune = %v, want %v (backlog must survive)", d, want)
	}
}

func TestFairQueuePrunesDrainedSources(t *testing.T) {
	m := &FairQueue{BytesPerSecond: 1000}
	for i := 0; i < 500; i++ {
		m.Departure(t0, vri.Addr(fmt.Sprintf("src-%d", i)), "dst", 100)
	}
	if got := m.backlogSize(); got != 500 {
		t.Fatalf("backlog = %d sources, want 500", got)
	}
	m.Prune(t0.Add(time.Second))
	if got := m.backlogSize(); got != 0 {
		t.Errorf("backlog after prune = %d sources, want 0", got)
	}
	m.Departure(t0.Add(time.Second), "busy", "dst", 5000)
	m.Prune(t0.Add(2 * time.Second))
	if got := m.backlogSize(); got != 1 {
		t.Errorf("busy source pruned: backlog = %d, want 1", got)
	}
}

// TestEnvPrunesCongestionState drives a real simulation with many
// one-shot senders through both scheduler modes and asserts the
// environment's periodic sweeps keep the FIFO model's per-link map from
// retaining every source that ever transmitted.
func TestEnvPrunesCongestionState(t *testing.T) {
	for _, workers := range []int{0, 4} {
		m := &FIFOQueue{}
		env := NewEnv(Options{Seed: 5, Congestion: m})
		env.SetWorkers(workers)
		nodes := env.SpawnN("n", 64)
		sink := nodes[0]
		_ = sink.Listen(vri.PortQuery, func(vri.Addr, []byte) {})
		for _, n := range nodes[1:] {
			n := n
			n.Schedule(time.Duration(n.id)*time.Millisecond, func() {
				n.Send(sink.Addr(), vri.PortQuery, []byte("one-shot"), nil)
			})
		}
		env.Run(time.Minute)
		if got := m.backlogSize(); got != 0 {
			t.Errorf("workers=%d: %d drained links survived the run-end sweep", workers, got)
		}
	}
}

// TestFIFOQueueDeterministicAcrossWorkerCounts locks in that sharding
// the congestion state does not change simulation results: a message
// storm through a congested link yields bit-identical traffic stats for
// the sequential and sharded schedulers.
func TestFIFOQueueDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (uint64, uint64, time.Time) {
		env := NewEnv(Options{Seed: 11, Congestion: &FIFOQueue{}})
		env.SetWorkers(workers)
		nodes := env.SpawnN("n", 32)
		// Per-node arrival clocks (sharded-safe: each slot is written only
		// by its owner's events); the driver folds them after the run.
		lastArrival := make([]time.Time, len(nodes))
		for i, n := range nodes {
			i, n := i, n
			_ = n.Listen(vri.PortQuery, func(vri.Addr, []byte) {
				if at := n.Now(); at.After(lastArrival[i]) {
					lastArrival[i] = at
				}
			})
			var tick func()
			sends := 0
			tick = func() {
				n.Send(nodes[(i+7)%len(nodes)].Addr(), vri.PortQuery, make([]byte, 600), nil)
				if sends++; sends < 40 {
					n.Schedule(50*time.Millisecond, tick)
				}
			}
			n.Schedule(time.Duration(i)*time.Millisecond, tick)
		}
		// Split the run with a bulk transfer whose link backlog straddles
		// the run boundary (50 KB at the default 125 KB/s frees the link
		// ~0.4s past the deadline), then issue driver-context sends from
		// the same node between the runs. The run-exit congestion sweep
		// must not prune that still-busy link: a between-run Departure
		// carries now = env.Now() (= the deadline), which is earlier than
		// the minimum pending event time at exit — pruning by the latter
		// would let the sharded mode forget backlog the sequential mode
		// remembers, and the bulk node's next departure would diverge.
		bulk := nodes[1]
		bulk.Schedule(10*time.Second-5*time.Millisecond, func() {
			bulk.Send(nodes[9].Addr(), vri.PortQuery, make([]byte, 50_000), nil)
		})
		env.Run(10 * time.Second)
		for _, n := range nodes[:8] {
			n.Send(nodes[9].Addr(), vri.PortQuery, make([]byte, 900), nil)
		}
		env.Run(20 * time.Second)
		var last time.Time
		for _, at := range lastArrival {
			if at.After(last) {
				last = at
			}
		}
		_, msgs, bytes := env.Stats()
		return msgs, bytes, last
	}
	m0, b0, a0 := run(0)
	m8, b8, a8 := run(8)
	if m0 != m8 || b0 != b8 || !a0.Equal(a8) {
		t.Fatalf("sequential vs sharded diverged: msgs %d/%d bytes %d/%d last-arrival %v/%v",
			m0, m8, b0, b8, a0, a8)
	}
	if m0 == 0 {
		t.Fatal("degenerate run: no messages")
	}
}

func TestFairQueueBulkFlowSlowerThanFIFOWhenShared(t *testing.T) {
	fifo := &FIFOQueue{BytesPerSecond: 1000}
	fair := &FairQueue{BytesPerSecond: 1000}
	// Start a light competing flow on both, then a bulk message.
	fifo.Departure(t0, "a", "c", 100)
	fair.Departure(t0, "a", "c", 100)
	dFIFO := fifo.Departure(t0, "a", "b", 5000)
	dFair := fair.Departure(t0, "a", "b", 5000)
	if !dFair.After(dFIFO) {
		t.Errorf("bulk under fair queuing (%v) should depart later than under FIFO (%v) while sharing", dFair, dFIFO)
	}
}
