package sim

// pool recycles event structs and message payload buffers for one
// scheduler context. Ownership is single-writer by construction, so no
// locking is needed anywhere:
//
//   - The Env owns one pool, used by the sequential scheduler and by all
//     driver/coordinator-context scheduling (workers parked).
//   - Each shard owns one pool, touched only by its worker goroutine
//     while a window executes.
//
// Allocation happens in the *scheduling* context (the source's shard, or
// the driver), recycling in the *dispatching* context (the target's
// shard, or the driver). Events therefore migrate between pools — a
// cross-shard message is allocated from the sender's free list and
// recycled into the receiver's — which is fine: a pool is a cache, not
// an accounting domain, and the population of each free list converges
// to that context's steady-state event backlog.
type pool struct {
	// freeEv is an intrusive LIFO free list threaded through event.next.
	freeEv *event
	// bufs is a LIFO stack of recycled payload buffers. One unsorted
	// stack suffices because a workload's message sizes are narrowly
	// distributed: undersized buffers are dropped on reuse, so the stack
	// converges to buffers of the workload's maximum payload size.
	bufs [][]byte
}

// getEvent returns a recycled event, or a fresh one if the free list is
// empty. All non-key fields are zero; the caller stamps the dispatch key
// and kind-specific body.
func (p *pool) getEvent() *event {
	ev := p.freeEv
	if ev == nil {
		return &event{}
	}
	p.freeEv = ev.next
	ev.next = nil
	return ev
}

// putEvent recycles ev after it was dispatched or discarded. The
// generation bump invalidates any timer handle still pointing at ev, the
// payload buffer (if any) returns to the buffer pool, and every
// reference is cleared so recycled events retain neither closures nor
// node state. Only the dispatching context may call this, and only once
// per pop: after putEvent the event may be handed out again immediately.
func (p *pool) putEvent(ev *event) {
	ev.gen.Add(1)
	if ev.payload != nil {
		p.putBuf(ev.payload)
		ev.payload = nil
	}
	ev.fn = nil
	ev.from = nil
	ev.ack = nil
	ev.node = nil
	ev.cancelled = false
	ev.ackOK = false
	ev.next = p.freeEv
	p.freeEv = ev
}

// getBuf returns a buffer of length n for a message payload. The caller
// owns it until it is recycled with the event that carries it.
func (p *pool) getBuf(n int) []byte {
	if k := len(p.bufs); k > 0 {
		b := p.bufs[k-1]
		p.bufs[k-1] = nil
		p.bufs = p.bufs[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
		// Undersized: drop it and allocate at the new high-water mark.
	}
	return make([]byte, n)
}

// putBuf recycles a payload buffer.
func (p *pool) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.bufs = append(p.bufs, b)
}
