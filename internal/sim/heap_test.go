package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refHeap is the reference implementation the concrete 4-ary heap must
// match: the previous container/heap-backed queue, ordered by the same
// event.before total order. Because (at, src, seq) is a strict total
// order, any correct min-heap pops the unique minimum at every step, so
// the two implementations must produce identical pop sequences.
type refHeap []*event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// genEvent builds an event with a unique (src, seq) key. Times are drawn
// from a small set so same-instant ties are common and the srcID/srcSeq
// tie-break actually decides order; a slice of the events is flagged
// cancelled, which must not affect heap order (skipping cancelled events
// is scheduler logic, above the heap).
func genEvent(rng *rand.Rand, seqs map[uint64]uint64) *event {
	src := uint64(rng.Intn(5)) // few sources → frequent src ties too
	seqs[src]++
	ev := &event{
		at:        time.Unix(0, int64(rng.Intn(8))*int64(time.Millisecond)).UTC(),
		src:       src,
		seq:       seqs[src],
		cancelled: rng.Intn(4) == 0,
	}
	return ev
}

// TestEventHeapMatchesReference drives random interleavings of pushes
// and pops through both heaps and requires pointer-identical pop
// sequences, across many seeds.
func TestEventHeapMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		seqs := make(map[uint64]uint64)
		var got eventHeap
		var want refHeap
		for op := 0; op < 2000; op++ {
			if len(want) == 0 || rng.Intn(3) != 0 {
				ev := genEvent(rng, seqs)
				got.push(ev)
				heap.Push(&want, ev)
			} else {
				g := got.pop()
				w := heap.Pop(&want).(*event)
				if g != w {
					t.Fatalf("seed %d op %d: pop mismatch: got (at=%v src=%d seq=%d), want (at=%v src=%d seq=%d)",
						seed, op, g.at, g.src, g.seq, w.at, w.src, w.seq)
				}
			}
		}
		// Drain: the full remaining order must match too.
		for len(want) > 0 {
			g := got.pop()
			w := heap.Pop(&want).(*event)
			if g != w {
				t.Fatalf("seed %d drain: pop mismatch: got seq %d, want seq %d", seed, g.seq, w.seq)
			}
		}
		if len(got) != 0 {
			t.Fatalf("seed %d: %d events left in 4-ary heap after reference drained", seed, len(got))
		}
	}
}

// TestEventHeapReinit checks the batch heapify used when SetWorkers
// migrates pending events between scheduler modes.
func TestEventHeapReinit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := make(map[uint64]uint64)
	var batch []*event
	for i := 0; i < 500; i++ {
		batch = append(batch, genEvent(rng, seqs))
	}
	got := append(eventHeap(nil), batch...)
	got.reinit()
	var want refHeap
	for _, ev := range batch {
		heap.Push(&want, ev)
	}
	for len(want) > 0 {
		g := got.pop()
		w := heap.Pop(&want).(*event)
		if g != w {
			t.Fatalf("pop mismatch after reinit: got seq %d, want seq %d", g.seq, w.seq)
		}
	}
}

// FuzzEventHeapMatchesReference explores push/pop interleavings chosen
// by the fuzzer. Each input byte drives one operation: low two bits
// select pop-vs-push, the rest select the event time (small range, so
// ties are dense).
func FuzzEventHeapMatchesReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 13, 0, 0, 7})
	f.Add([]byte("pushpoppushpushpop"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		seqs := make(map[uint64]uint64)
		var got eventHeap
		var want refHeap
		for _, b := range ops {
			if b&3 == 0 && len(want) > 0 {
				g := got.pop()
				w := heap.Pop(&want).(*event)
				if g != w {
					t.Fatalf("pop mismatch: got (at=%v src=%d seq=%d), want (at=%v src=%d seq=%d)",
						g.at, g.src, g.seq, w.at, w.src, w.seq)
				}
				continue
			}
			src := uint64(b >> 6)
			seqs[src]++
			ev := &event{
				at:  time.Unix(0, int64(b>>2&15)*int64(time.Millisecond)).UTC(),
				src: src,
				seq: seqs[src],
			}
			got.push(ev)
			heap.Push(&want, ev)
		}
		for len(want) > 0 {
			if got.pop() != heap.Pop(&want).(*event) {
				t.Fatal("drain mismatch")
			}
		}
	})
}
