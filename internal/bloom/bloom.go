// Package bloom provides the Bloom filter used by PIER's bandwidth-
// reducing join rewrites (paper §2.1.1: "PIER minimizes network
// bandwidth consumption via fairly traditional bandwidth-reducing
// algorithms (e.g., Bloom joins)"; §3.3.4: "common rewrite strategies
// such as Bloom join and semi-joins can be constructed").
//
// In a distributed Bloom join, each site summarizes the join keys of one
// relation into a filter, the filters are OR-merged at a rendezvous, and
// the other relation ships only the tuples whose keys might match —
// trading a small false-positive rate for a large reduction in rehash
// traffic.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"

	"pier/internal/wire"
)

// Filter is a classic k-hash-function Bloom filter over byte strings.
type Filter struct {
	bits []uint64
	m    uint32 // number of bits
	k    uint32 // number of hash functions
	n    uint64 // elements added (for stats; merged filters sum)
}

// New creates a filter sized for the expected number of elements and
// target false-positive probability. Both are clamped to sane minima.
func New(expected int, fpRate float64) *Filter {
	if expected < 1 {
		expected = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// Standard sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
	m := uint32(math.Ceil(-float64(expected) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(float64(m) / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// hashPair derives the two base hashes for Kirsch–Mitzenmacher double
// hashing.
func hashPair(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h.Write([]byte{0x9e}) // cheap second stream
	h2 := h.Sum64()
	if h2%2 == 0 { // h2 must be odd so strides cover the table
		h2++
	}
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key []byte) {
	h1, h2 := hashPair(key)
	for i := uint32(0); i < f.k; i++ {
		bit := uint32((h1 + uint64(i)*h2) % uint64(f.m))
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.n++
}

// AddString inserts a string key.
func (f *Filter) AddString(key string) { f.Add([]byte(key)) }

// MayContain reports whether key is possibly in the set. False means
// definitely absent; true may be a false positive.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := hashPair(key)
	for i := uint32(0); i < f.k; i++ {
		bit := uint32((h1 + uint64(i)*h2) % uint64(f.m))
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// MayContainString is MayContain for a string key.
func (f *Filter) MayContainString(key string) bool { return f.MayContain([]byte(key)) }

// Merge ORs another filter of identical geometry into this one — the
// rendezvous step of a distributed Bloom join. It fails on mismatched
// geometry (filters built with different parameters cannot be combined).
func (f *Filter) Merge(o *Filter) error {
	if f.m != o.m || f.k != o.k {
		return fmt.Errorf("bloom: geometry mismatch (m=%d/%d k=%d/%d)", f.m, o.m, f.k, o.k)
	}
	for i := range f.bits {
		f.bits[i] |= o.bits[i]
	}
	f.n += o.n
	return nil
}

// Count returns the number of Add calls folded into the filter.
func (f *Filter) Count() uint64 { return f.n }

// FillRatio returns the fraction of set bits — a saturation diagnostic.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(f.m)
}

// Encode serializes the filter for shipping through the DHT.
func (f *Filter) Encode() []byte {
	w := wire.NewWriter(16 + 8*len(f.bits))
	w.U32(f.m)
	w.U32(f.k)
	w.U64(f.n)
	w.U32(uint32(len(f.bits)))
	for _, word := range f.bits {
		w.U64(word)
	}
	return w.Bytes()
}

// Decode parses an encoded filter.
func Decode(b []byte) (*Filter, error) {
	r := wire.NewReader(b)
	f := &Filter{m: r.U32(), k: r.U32(), n: r.U64()}
	nw := int(r.U32())
	if r.Err() == nil && nw != int((f.m+63)/64) {
		return nil, fmt.Errorf("bloom: inconsistent word count %d for m=%d", nw, f.m)
	}
	f.bits = make([]uint64, 0, nw)
	for i := 0; i < nw && r.Err() == nil; i++ {
		f.bits = append(f.bits, r.U64())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}
