package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContainString(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative on key-%d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContainString(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false-positive rate %.4f far above 1%% target", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(100, 0.01)
	if f.MayContainString("anything") {
		t.Error("empty filter claims membership")
	}
	if f.FillRatio() != 0 {
		t.Error("empty filter has set bits")
	}
}

func TestMergeUnionsMembership(t *testing.T) {
	a := New(100, 0.01)
	b := New(100, 0.01)
	a.AddString("only-a")
	b.AddString("only-b")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.MayContainString("only-a") || !a.MayContainString("only-b") {
		t.Error("merge lost membership")
	}
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
}

func TestMergeGeometryMismatch(t *testing.T) {
	a := New(100, 0.01)
	b := New(100000, 0.001)
	if err := a.Merge(b); err == nil {
		t.Error("mismatched geometry must not merge")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := New(500, 0.02)
	for i := 0; i < 500; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	g, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if !g.MayContainString(fmt.Sprintf("k%d", i)) {
			t.Fatalf("decoded filter lost k%d", i)
		}
	}
	if g.Count() != f.Count() {
		t.Error("count not preserved")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("garbage decoded")
	}
	// Inconsistent header: claims m=64 (1 word) but 9999 words.
	f := New(10, 0.01)
	enc := f.Encode()
	enc[12+4-1] = 0xff // corrupt word count low byte region
	if _, err := Decode(enc[:16]); err == nil {
		t.Error("truncated filter decoded")
	}
}

func TestPropertyAddedKeysAlwaysFound(t *testing.T) {
	check := func(keys [][]byte, probe []byte) bool {
		f := New(len(keys)+1, 0.01)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeEquivalentToUnion(t *testing.T) {
	check := func(as, bs [][]byte) bool {
		merged := New(64, 0.01)
		union := New(64, 0.01)
		other := New(64, 0.01)
		for _, k := range as {
			merged.Add(k)
			union.Add(k)
		}
		for _, k := range bs {
			other.Add(k)
			union.Add(k)
		}
		if err := merged.Merge(other); err != nil {
			return false
		}
		// Identical bit patterns imply identical membership answers.
		for i := range merged.bits {
			if merged.bits[i] != union.bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
