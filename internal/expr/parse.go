package expr

import (
	"fmt"
	"strconv"
	"strings"

	"pier/internal/tuple"
)

// Parse compiles the textual expression syntax used in UFL plans and the
// SQL-like frontend:
//
//	expr  := or
//	or    := and ( OR and )*
//	and   := not ( AND not )*
//	not   := NOT not | cmp
//	cmp   := add ( (= | != | <> | < | <= | > | >=) add )?
//	add   := mul ( (+|-) mul )*
//	mul   := unary ( (*|/|%) unary )*
//	unary := - unary | primary
//	prim  := NUMBER | 'string' | TRUE | FALSE | NULL
//	       | ident '(' args ')' | ident('.'ident)* | '(' expr ')'
//
// Keywords are case-insensitive; identifiers are case-sensitive column
// names and may be dotted (qualified) as produced by joins.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("expr: unexpected %q at end of expression", p.peek().text)
	}
	return e, nil
}

// MustParse is Parse for statically known expressions; it panics on
// error. Intended for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp // punctuation and operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("expr: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			// Multi-byte operators first.
			for _, op := range []string{"!=", "<>", "<=", ">="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tokOp, op, i})
					i += 2
					goto next
				}
			}
			if strings.ContainsRune("=<>+-*/%(),", rune(c)) {
				toks = append(toks, token{tokOp, string(c), i})
				i++
				goto next
			}
			return nil, fmt.Errorf("expr: unexpected character %q at %d", c, i)
		next:
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

// acceptKeyword consumes the next token if it is the given keyword
// (case-insensitive).
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("expr: expected %q, found %q at %d", op, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]CmpOp{
	"=": EQ, "!=": NE, "<>": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Cmp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: Add, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch {
		case p.acceptOp("*"):
			op = Mul
		case p.acceptOp("/"):
			op = Div
		case p.acceptOp("%"):
			op = Mod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("expr: bad number %q at %d", t.text, t.pos)
			}
			return Const{Val: tuple.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at %d", t.text, t.pos)
		}
		return Const{Val: tuple.Int(i)}, nil

	case tokString:
		return Const{Val: tuple.String(t.text)}, nil

	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return Const{Val: tuple.Bool(true)}, nil
		case "FALSE":
			return Const{Val: tuple.Bool(false)}, nil
		case "NULL":
			return Const{Val: tuple.Null()}, nil
		}
		if p.acceptOp("(") {
			var args []Expr
			if !p.acceptOp(")") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptOp(")") {
						break
					}
					if err := p.expectOp(","); err != nil {
						return nil, err
					}
				}
			}
			return Func{Name: t.text, Args: args}, nil
		}
		return Col{Name: t.text}, nil

	case tokOp:
		if t.text == "(" {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected %q at %d", t.text, t.pos)
}
