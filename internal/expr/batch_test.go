package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"pier/internal/tuple"
)

// evalCode maps row-wise Eval's (value, ok) to the batch tri-state.
func evalCode(e Expr, t *tuple.Tuple) int8 {
	v, ok := e.Eval(t)
	if !ok {
		return RowMalformed
	}
	b, ok := v.AsBool()
	if !ok {
		return RowMalformed
	}
	if b {
		return RowPass
	}
	return RowFail
}

// randPredBatch builds a columnar batch whose columns deliberately mix
// kinds (ints, floats, strings, nulls) so comparisons hit every branch:
// pass, fail, and malformed.
func randPredBatch(rng *rand.Rand, n int) *tuple.Batch {
	b := tuple.NewColumnarBatch("t", []string{"a", "b", "flag", "s"}, n)
	mixedVal := func() tuple.Value {
		switch rng.Intn(5) {
		case 0:
			return tuple.Int(rng.Int63n(20) - 10)
		case 1:
			return tuple.Float(float64(rng.Intn(20)) - 10)
		case 2:
			return tuple.String(fmt.Sprintf("v%d", rng.Intn(5)))
		case 3:
			return tuple.Null()
		default:
			return tuple.Bool(rng.Intn(2) == 0)
		}
	}
	for i := 0; i < n; i++ {
		b.AppendRow([]tuple.Value{
			mixedVal(),
			mixedVal(),
			mixedVal(),
			tuple.String(fmt.Sprintf("v%d", rng.Intn(5))),
		})
	}
	return b
}

var predCases = []struct {
	name string
	e    Expr
}{
	{"const true", Const{Val: tuple.Bool(true)}},
	{"const non-bool", Const{Val: tuple.Int(3)}},
	{"col flag", Col{Name: "flag"}},
	{"col missing", Col{Name: "nope"}},
	{"cmp col const", Cmp{Op: GT, L: Col{Name: "a"}, R: Const{Val: tuple.Int(0)}}},
	{"cmp col col", Cmp{Op: LE, L: Col{Name: "a"}, R: Col{Name: "b"}}},
	{"cmp const const", Cmp{Op: NE, L: Const{Val: tuple.Int(1)}, R: Const{Val: tuple.Int(2)}}},
	{"cmp string", Cmp{Op: EQ, L: Col{Name: "s"}, R: Const{Val: tuple.String("v2")}}},
	{"cmp missing col", Cmp{Op: EQ, L: Col{Name: "nope"}, R: Const{Val: tuple.Int(1)}}},
	{"and short-circuit", And{
		L: Cmp{Op: LT, L: Col{Name: "a"}, R: Const{Val: tuple.Int(0)}},
		R: Cmp{Op: GT, L: Col{Name: "b"}, R: Const{Val: tuple.Int(0)}},
	}},
	{"and false-left beats malformed-right", And{
		L: Const{Val: tuple.Bool(false)},
		R: Col{Name: "nope"},
	}},
	{"or true-left beats malformed-right", Or{
		L: Const{Val: tuple.Bool(true)},
		R: Col{Name: "nope"},
	}},
	{"or", Or{
		L: Cmp{Op: EQ, L: Col{Name: "s"}, R: Const{Val: tuple.String("v0")}},
		R: Cmp{Op: GE, L: Col{Name: "a"}, R: Col{Name: "b"}},
	}},
	{"not", Not{E: Cmp{Op: GT, L: Col{Name: "a"}, R: Const{Val: tuple.Int(0)}}}},
	{"not malformed stays malformed", Not{E: Col{Name: "nope"}}},
	{"nested", And{
		L: Or{
			L: Cmp{Op: GT, L: Col{Name: "a"}, R: Const{Val: tuple.Int(2)}},
			R: Cmp{Op: LT, L: Col{Name: "b"}, R: Const{Val: tuple.Int(-2)}},
		},
		R: Not{E: Cmp{Op: EQ, L: Col{Name: "s"}, R: Const{Val: tuple.String("v1")}}},
	}},
}

// The compiled batch predicate must agree with row-wise Eval on every row,
// including the malformed tri-state and short-circuit interactions.
func TestCompilePredMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range predCases {
		bp := CompilePred(tc.e)
		if bp == nil {
			t.Fatalf("%s: CompilePred returned nil for compilable shape", tc.name)
		}
		for trial := 0; trial < 10; trial++ {
			b := randPredBatch(rng, 1+rng.Intn(40))
			out := make([]int8, b.Len())
			bp(b, out)
			for i := 0; i < b.Len(); i++ {
				want := evalCode(tc.e, b.Row(i))
				if out[i] != want {
					t.Fatalf("%s trial %d row %d (%v): compiled=%d eval=%d",
						tc.name, trial, i, b.Row(i), out[i], want)
				}
			}
		}
	}
}

// Selections must be honored: the compiled predicate sees logical rows.
func TestCompilePredOnSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := Cmp{Op: GT, L: Col{Name: "a"}, R: Const{Val: tuple.Int(0)}}
	bp := CompilePred(e)
	b := randPredBatch(rng, 30)
	var keep []int32
	for i := 0; i < b.Len(); i += 3 {
		keep = append(keep, int32(i))
	}
	view := b.SelectLogical(keep)
	out := make([]int8, view.Len())
	bp(view, out)
	for i := 0; i < view.Len(); i++ {
		if want := evalCode(e, view.Row(i)); out[i] != want {
			t.Fatalf("selected row %d: compiled=%d eval=%d", i, out[i], want)
		}
	}
}

// Shapes outside the compilable subset must return nil (operators fall
// back to row-wise Eval), never a wrong vectorized result.
func TestCompilePredRejectsUncompilable(t *testing.T) {
	arith := Arith{Op: Add, L: Col{Name: "a"}, R: Const{Val: tuple.Int(1)}}
	cases := []Expr{
		arith,
		Cmp{Op: GT, L: arith, R: Const{Val: tuple.Int(0)}},
		And{L: Const{Val: tuple.Bool(true)}, R: Cmp{Op: GT, L: arith, R: Col{Name: "b"}}},
		Not{E: Cmp{Op: EQ, L: arith, R: arith}},
	}
	for i, e := range cases {
		if CompilePred(e) != nil {
			t.Errorf("case %d (%s): expected nil BatchPred", i, e)
		}
	}
}
