package expr

import "sort"

// Canonical returns a structurally normalized form of e for SIGNATURE
// purposes: operands of commutative And/Or chains are flattened and
// sorted by their canonical rendering, and a comparison whose operands
// are out of that order is flipped around the mirrored operator
// (a < b ≡ b > a). Two predicates that differ only in commutative
// operand order or comparison direction thus render to one string, so
// human-authored orderings hash to the same plan signature and hit the
// shared-subtree cache (ufl.SubtreeSignatures).
//
// The rewrite is used ONLY when computing signatures — executed plans
// keep their authored shape, so evaluation order (and with it the
// short-circuit treatment of malformed inputs) is untouched. The
// adopting query simply runs the cached chain's predicate, exactly as
// subtree sharing already implies.
func Canonical(e Expr) Expr {
	switch v := e.(type) {
	case And:
		ops := flattenCanon(e, true, nil)
		return rebuild(ops, true)
	case Or:
		ops := flattenCanon(e, false, nil)
		return rebuild(ops, false)
	case Not:
		return Not{E: Canonical(v.E)}
	case Cmp:
		l, r := Canonical(v.L), Canonical(v.R)
		if l.String() > r.String() {
			return Cmp{Op: mirror(v.Op), L: r, R: l}
		}
		return Cmp{Op: v.Op, L: l, R: r}
	case Arith:
		// Arithmetic is left alone: Add/Mul commute over numbers but "+"
		// also concatenates strings, and reordering changes which operand
		// a div-by-zero or type failure is discovered on.
		return Arith{Op: v.Op, L: Canonical(v.L), R: Canonical(v.R)}
	case Neg:
		return Neg{E: Canonical(v.E)}
	case Func:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = Canonical(a)
		}
		return Func{Name: v.Name, Args: args}
	default:
		return e
	}
}

// flattenCanon collects the canonicalized leaves of a same-operator
// And/Or chain (conj selects which) into ops.
func flattenCanon(e Expr, conj bool, ops []Expr) []Expr {
	if conj {
		if a, ok := e.(And); ok {
			ops = flattenCanon(a.L, conj, ops)
			return flattenCanon(a.R, conj, ops)
		}
	} else {
		if o, ok := e.(Or); ok {
			ops = flattenCanon(o.L, conj, ops)
			return flattenCanon(o.R, conj, ops)
		}
	}
	return append(ops, Canonical(e))
}

// rebuild sorts the chain's operands by rendering and reassembles them
// left-deep — the same shape the parser produces for a AND b AND c.
func rebuild(ops []Expr, conj bool) Expr {
	sort.SliceStable(ops, func(i, j int) bool {
		return ops[i].String() < ops[j].String()
	})
	e := ops[0]
	for _, o := range ops[1:] {
		if conj {
			e = And{L: e, R: o}
		} else {
			e = Or{L: e, R: o}
		}
	}
	return e
}

// mirror returns the operator that preserves a comparison's meaning when
// its operands are swapped.
func mirror(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case GT:
		return LT
	case LE:
		return GE
	case GE:
		return LE
	}
	return op // EQ and NE are symmetric
}

// CanonicalString parses src as a predicate and renders its Canonical
// form; unparseable input comes back unchanged. This is the signature
// normalization hook: callers hashing plan arguments pass predicate
// strings through here so equivalent orderings collide.
func CanonicalString(src string) string {
	e, err := Parse(src)
	if err != nil {
		return src
	}
	return Canonical(e).String()
}
