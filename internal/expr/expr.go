// Package expr implements the scalar expression language used in PIER
// query plans: column references, literals, comparisons, boolean logic,
// arithmetic, and a registry of scalar functions.
//
// Evaluation follows the paper's best-effort typing policy (§3.3.1,
// §3.3.4): there is no catalog to type-check against, so type errors are
// discovered at evaluation time. Every evaluation returns (value, ok);
// ok=false means the tuple lacked a referenced field or a value had an
// incompatible type, and the operator evaluating the expression discards
// the tuple.
package expr

import (
	"fmt"
	"strings"

	"pier/internal/tuple"
)

// Expr is a compiled scalar expression.
type Expr interface {
	// Eval computes the expression over one tuple. ok=false marks the
	// tuple malformed with respect to this expression.
	Eval(t *tuple.Tuple) (v tuple.Value, ok bool)
	// String renders the expression in parseable form.
	String() string
}

// Col references a column by name.
type Col struct{ Name string }

// Eval looks the column up in the tuple.
func (c Col) Eval(t *tuple.Tuple) (tuple.Value, bool) { return t.Get(c.Name) }

// String returns the column name.
func (c Col) String() string { return c.Name }

// Const is a literal value.
type Const struct{ Val tuple.Value }

// Eval returns the literal.
func (c Const) Eval(*tuple.Tuple) (tuple.Value, bool) { return c.Val, true }

// String renders the literal.
func (c Const) String() string {
	if s, ok := c.Val.AsString(); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return c.Val.String()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Cmp compares two subexpressions. Incomparable operands make the tuple
// malformed rather than raising an error.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval applies the comparison.
func (c Cmp) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	lv, ok := c.L.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	rv, ok := c.R.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	cmp, ok := tuple.Compare(lv, rv)
	if !ok {
		return tuple.Value{}, false
	}
	var b bool
	switch c.Op {
	case EQ:
		b = cmp == 0
	case NE:
		b = cmp != 0
	case LT:
		b = cmp < 0
	case LE:
		b = cmp <= 0
	case GT:
		b = cmp > 0
	case GE:
		b = cmp >= 0
	}
	return tuple.Bool(b), true
}

func (c Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// And is boolean conjunction with short-circuiting.
type And struct{ L, R Expr }

// Eval evaluates left-to-right; a false left operand decides the result
// without consulting the right.
func (a And) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	lv, ok := a.L.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	lb, ok := lv.AsBool()
	if !ok {
		return tuple.Value{}, false
	}
	if !lb {
		return tuple.Bool(false), true
	}
	rv, ok := a.R.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	rb, ok := rv.AsBool()
	if !ok {
		return tuple.Value{}, false
	}
	return tuple.Bool(rb), true
}

func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is boolean disjunction with short-circuiting.
type Or struct{ L, R Expr }

// Eval evaluates left-to-right; a true left operand decides the result.
func (o Or) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	lv, ok := o.L.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	lb, ok := lv.AsBool()
	if !ok {
		return tuple.Value{}, false
	}
	if lb {
		return tuple.Bool(true), true
	}
	rv, ok := o.R.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	rb, ok := rv.AsBool()
	if !ok {
		return tuple.Value{}, false
	}
	return tuple.Bool(rb), true
}

func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is boolean negation.
type Not struct{ E Expr }

// Eval negates a boolean operand.
func (n Not) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	v, ok := n.E.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	b, ok := v.AsBool()
	if !ok {
		return tuple.Value{}, false
	}
	return tuple.Bool(!b), true
}

func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	}
	return "?"
}

// Arith applies integer or float arithmetic, widening int to float when
// the operands are mixed. Division by zero makes the tuple malformed.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval applies the operator.
func (a Arith) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	lv, ok := a.L.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	rv, ok := a.R.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	if li, lok := lv.AsInt(); lok {
		if ri, rok := rv.AsInt(); rok {
			switch a.Op {
			case Add:
				return tuple.Int(li + ri), true
			case Sub:
				return tuple.Int(li - ri), true
			case Mul:
				return tuple.Int(li * ri), true
			case Div:
				if ri == 0 {
					return tuple.Value{}, false
				}
				return tuple.Int(li / ri), true
			case Mod:
				if ri == 0 {
					return tuple.Value{}, false
				}
				return tuple.Int(li % ri), true
			}
		}
	}
	lf, lok := lv.AsFloat()
	rf, rok := rv.AsFloat()
	if !lok || !rok {
		// String concatenation via "+" as a convenience.
		if a.Op == Add {
			if ls, ok1 := lv.AsString(); ok1 {
				if rs, ok2 := rv.AsString(); ok2 {
					return tuple.String(ls + rs), true
				}
			}
		}
		return tuple.Value{}, false
	}
	switch a.Op {
	case Add:
		return tuple.Float(lf + rf), true
	case Sub:
		return tuple.Float(lf - rf), true
	case Mul:
		return tuple.Float(lf * rf), true
	case Div:
		if rf == 0 {
			return tuple.Value{}, false
		}
		return tuple.Float(lf / rf), true
	case Mod:
		return tuple.Value{}, false
	}
	return tuple.Value{}, false
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Neg is unary numeric negation.
type Neg struct{ E Expr }

// Eval negates an int or float operand.
func (n Neg) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	v, ok := n.E.Eval(t)
	if !ok {
		return tuple.Value{}, false
	}
	if i, ok := v.AsInt(); ok {
		return tuple.Int(-i), true
	}
	if f, ok := v.AsFloat(); ok {
		return tuple.Float(-f), true
	}
	return tuple.Value{}, false
}

func (n Neg) String() string { return fmt.Sprintf("(-%s)", n.E) }

// Func applies a registered scalar function to argument expressions.
type Func struct {
	Name string
	Args []Expr
}

// Eval evaluates the arguments and applies the function. An unregistered
// function name makes every tuple malformed (there is no catalog to
// reject the query earlier).
func (f Func) Eval(t *tuple.Tuple) (tuple.Value, bool) {
	fn := builtins[strings.ToLower(f.Name)]
	if fn == nil {
		return tuple.Value{}, false
	}
	args := make([]tuple.Value, len(f.Args))
	for i, a := range f.Args {
		v, ok := a.Eval(t)
		if !ok {
			return tuple.Value{}, false
		}
		args[i] = v
	}
	return fn(args)
}

func (f Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// ScalarFunc is the signature of a registered scalar function.
type ScalarFunc func(args []tuple.Value) (tuple.Value, bool)

// builtins is the scalar function registry. PIER supports extensibility
// through abstract data types (§3.3.1); here extensibility is a Go-level
// registry extended via RegisterFunc.
var builtins = map[string]ScalarFunc{
	"length": func(a []tuple.Value) (tuple.Value, bool) {
		if len(a) != 1 {
			return tuple.Value{}, false
		}
		if s, ok := a[0].AsString(); ok {
			return tuple.Int(int64(len(s))), true
		}
		if b, ok := a[0].AsBytes(); ok {
			return tuple.Int(int64(len(b))), true
		}
		return tuple.Value{}, false
	},
	"lower": stringFunc(strings.ToLower),
	"upper": stringFunc(strings.ToUpper),
	"abs": func(a []tuple.Value) (tuple.Value, bool) {
		if len(a) != 1 {
			return tuple.Value{}, false
		}
		if i, ok := a[0].AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return tuple.Int(i), true
		}
		if f, ok := a[0].AsFloat(); ok {
			if f < 0 {
				f = -f
			}
			return tuple.Float(f), true
		}
		return tuple.Value{}, false
	},
	"coalesce": func(a []tuple.Value) (tuple.Value, bool) {
		for _, v := range a {
			if !v.IsNull() {
				return v, true
			}
		}
		return tuple.Null(), true
	},
	"contains": func(a []tuple.Value) (tuple.Value, bool) {
		if len(a) != 2 {
			return tuple.Value{}, false
		}
		s, ok1 := a[0].AsString()
		sub, ok2 := a[1].AsString()
		if !ok1 || !ok2 {
			return tuple.Value{}, false
		}
		return tuple.Bool(strings.Contains(s, sub)), true
	},
	"startswith": func(a []tuple.Value) (tuple.Value, bool) {
		if len(a) != 2 {
			return tuple.Value{}, false
		}
		s, ok1 := a[0].AsString()
		p, ok2 := a[1].AsString()
		if !ok1 || !ok2 {
			return tuple.Value{}, false
		}
		return tuple.Bool(strings.HasPrefix(s, p)), true
	},
	"isnull": func(a []tuple.Value) (tuple.Value, bool) {
		if len(a) != 1 {
			return tuple.Value{}, false
		}
		return tuple.Bool(a[0].IsNull()), true
	},
}

func stringFunc(f func(string) string) ScalarFunc {
	return func(a []tuple.Value) (tuple.Value, bool) {
		if len(a) != 1 {
			return tuple.Value{}, false
		}
		s, ok := a[0].AsString()
		if !ok {
			return tuple.Value{}, false
		}
		return tuple.String(f(s)), true
	}
}

// RegisterFunc adds or replaces a scalar function available to all
// queries. Names are case-insensitive.
func RegisterFunc(name string, fn ScalarFunc) {
	builtins[strings.ToLower(name)] = fn
}

// TruePredicate is an expression that accepts every tuple; used for
// true-predicate (scan-everything) queries (§3.3.3).
var TruePredicate Expr = Const{Val: tuple.Bool(true)}
