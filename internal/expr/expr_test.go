package expr

import (
	"testing"
	"testing/quick"

	"pier/internal/tuple"
)

func row() *tuple.Tuple {
	return tuple.New("t").
		Set("a", tuple.Int(5)).
		Set("b", tuple.Int(3)).
		Set("name", tuple.String("alice")).
		Set("score", tuple.Float(2.5)).
		Set("ok", tuple.Bool(true))
}

// evalBool parses and evaluates src against row(), failing the test on
// parse errors.
func evalBool(t *testing.T, src string, tp *tuple.Tuple) (bool, bool) {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, ok := e.Eval(tp)
	if !ok {
		return false, false
	}
	b, ok := v.AsBool()
	if !ok {
		t.Fatalf("%q did not yield bool", src)
	}
	return b, true
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a = 5", true},
		{"a != 5", false},
		{"a <> 4", true},
		{"a < 6", true},
		{"a <= 5", true},
		{"a > 5", false},
		{"a >= 5", true},
		{"name = 'alice'", true},
		{"name != 'bob'", true},
		{"score > 2", true},
		{"score < a", true}, // float vs int widening
	}
	for _, c := range cases {
		got, ok := evalBool(t, c.src, row())
		if !ok {
			t.Errorf("%q: malformed", c.src)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBooleanLogicAndPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"a = 5 AND b = 3", true},
		{"a = 5 AND b = 4", false},
		{"a = 4 OR b = 3", true},
		{"NOT a = 4", true},
		// AND binds tighter than OR.
		{"a = 4 OR a = 5 AND b = 3", true},
		{"(a = 4 OR a = 5) AND b = 4", false},
		{"NOT (a = 5 AND b = 3)", false},
	}
	for _, c := range cases {
		got, ok := evalBool(t, c.src, row())
		if !ok {
			t.Errorf("%q: malformed", c.src)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want tuple.Value
	}{
		{"a + b", tuple.Int(8)},
		{"a - b", tuple.Int(2)},
		{"a * b", tuple.Int(15)},
		{"a / b", tuple.Int(1)},
		{"a % b", tuple.Int(2)},
		{"-a", tuple.Int(-5)},
		{"a + score", tuple.Float(7.5)},
		{"a * 2 + b", tuple.Int(13)}, // precedence
		{"a * (2 + b)", tuple.Int(25)},
		{"name + '!'", tuple.String("alice!")},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		v, ok := e.Eval(row())
		if !ok {
			t.Errorf("%q: malformed", c.src)
			continue
		}
		if !tuple.Equal(v, c.want) {
			t.Errorf("%q = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestDivisionByZeroIsMalformed(t *testing.T) {
	for _, src := range []string{"a / 0", "a % 0", "score / 0"} {
		e := MustParse(src)
		if _, ok := e.Eval(row()); ok {
			t.Errorf("%q should be malformed", src)
		}
	}
}

func TestMissingColumnIsMalformed(t *testing.T) {
	e := MustParse("ghost = 1")
	if _, ok := e.Eval(row()); ok {
		t.Error("reference to absent column must mark tuple malformed")
	}
}

func TestIncompatibleComparisonIsMalformed(t *testing.T) {
	e := MustParse("name > 5")
	if _, ok := e.Eval(row()); ok {
		t.Error("string>int must mark tuple malformed (best-effort policy)")
	}
}

func TestShortCircuitSkipsMalformedRight(t *testing.T) {
	// a=4 is false; AND short-circuits before evaluating the malformed
	// right side, so the tuple survives with result false.
	got, ok := evalBool(t, "a = 4 AND ghost = 1", row())
	if !ok {
		t.Fatal("short-circuit AND should not evaluate right side")
	}
	if got {
		t.Error("want false")
	}
	got, ok = evalBool(t, "a = 5 OR ghost = 1", row())
	if !ok || !got {
		t.Error("short-circuit OR should yield true")
	}
}

func TestFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want tuple.Value
	}{
		{"length(name)", tuple.Int(5)},
		{"upper(name)", tuple.String("ALICE")},
		{"lower('ABC')", tuple.String("abc")},
		{"abs(-3)", tuple.Int(3)},
		{"abs(b - a)", tuple.Int(2)},
		{"contains(name, 'lic')", tuple.Bool(true)},
		{"startswith(name, 'al')", tuple.Bool(true)},
		{"coalesce(NULL, a)", tuple.Int(5)},
		{"isnull(NULL)", tuple.Bool(true)},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		v, ok := e.Eval(row())
		if !ok {
			t.Errorf("%q: malformed", c.src)
			continue
		}
		if !tuple.Equal(v, c.want) && !(v.IsNull() && c.want.IsNull()) {
			t.Errorf("%q = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestUnknownFunctionIsMalformed(t *testing.T) {
	e := MustParse("nosuchfn(a)")
	if _, ok := e.Eval(row()); ok {
		t.Error("unknown function must mark tuples malformed")
	}
}

func TestRegisterFunc(t *testing.T) {
	RegisterFunc("triple", func(a []tuple.Value) (tuple.Value, bool) {
		i, ok := a[0].AsInt()
		if !ok {
			return tuple.Value{}, false
		}
		return tuple.Int(3 * i), true
	})
	e := MustParse("triple(a)")
	v, ok := e.Eval(row())
	if !ok {
		t.Fatal("malformed")
	}
	if i, _ := v.AsInt(); i != 15 {
		t.Errorf("triple(5) = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a +", "(a", "a = ", "'unterminated", "a ? b", "f(a,", "1.2.3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	e := MustParse("name = 'it''s'")
	tp := tuple.New("t").Set("name", tuple.String("it's"))
	v, ok := e.Eval(tp)
	if !ok {
		t.Fatal("malformed")
	}
	if b, _ := v.AsBool(); !b {
		t.Error("escaped quote mismatch")
	}
}

func TestQualifiedColumnNames(t *testing.T) {
	tp := tuple.New("j").Set("R.id", tuple.Int(1)).Set("S.id", tuple.Int(1))
	got, ok := evalBool(t, "R.id = S.id", tp)
	if !ok || !got {
		t.Error("qualified names must evaluate")
	}
}

func TestStringRendersParseable(t *testing.T) {
	// Round-trip: parse, render, re-parse, evaluate identically.
	srcs := []string{
		"a = 5 AND b < 10 OR NOT ok",
		"length(name) + 2 * a",
		"name = 'it''s'",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Errorf("re-parse %q (rendered %q): %v", src, e1.String(), err)
			continue
		}
		v1, ok1 := e1.Eval(row())
		v2, ok2 := e2.Eval(row())
		if ok1 != ok2 || (ok1 && !tuple.Equal(v1, v2)) {
			t.Errorf("%q: eval mismatch after round trip", src)
		}
	}
}

func TestPropertyIntComparisonMatchesGo(t *testing.T) {
	e := MustParse("x < y")
	f := func(x, y int64) bool {
		tp := tuple.New("t").Set("x", tuple.Int(x)).Set("y", tuple.Int(y))
		v, ok := e.Eval(tp)
		if !ok {
			return false
		}
		b, _ := v.AsBool()
		return b == (x < y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyArithmeticMatchesGo(t *testing.T) {
	e := MustParse("x * 2 + y")
	f := func(x, y int64) bool {
		// Avoid overflow distraction: bound inputs.
		x %= 1 << 30
		y %= 1 << 30
		tp := tuple.New("t").Set("x", tuple.Int(x)).Set("y", tuple.Int(y))
		v, ok := e.Eval(tp)
		if !ok {
			return false
		}
		i, _ := v.AsInt()
		return i == x*2+y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
