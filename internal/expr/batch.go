package expr

import (
	"pier/internal/tuple"
)

// Vectorized predicate compilation. CompilePred turns the hot predicate
// shapes — Col, Const, Cmp, And, Or, Not over them — into a closure that
// evaluates a whole columnar batch into a per-row tri-state result,
// resolving each column reference to an index ONCE per batch instead of
// a name scan per row, and replacing the interface-dispatched Eval tree
// walk with tight loops. Anything outside that shape (arithmetic,
// functions) stays on the row-wise Eval fallback in the operators.
//
// The tri-state per row mirrors the best-effort typing policy: a row can
// pass, fail, or be malformed (missing column, incomparable kinds) — the
// operator discards malformed rows exactly as row-wise Eval would.
// Short-circuit semantics match Eval precisely: And with a false left is
// false even when the right side is malformed; Or with a true left is
// true likewise; a malformed left poisons the row either way.

// Per-row batch-predicate results.
const (
	RowFail      int8 = 0
	RowPass      int8 = 1
	RowMalformed int8 = -1
)

// BatchPred evaluates a predicate over every selected row of a columnar
// batch, writing one tri-state per row into out (len out == b.Len()).
// A BatchPred carries internal scratch buffers and is NOT safe for
// concurrent use; each operator instance compiles its own.
type BatchPred func(b *tuple.Batch, out []int8)

// CompilePred compiles e into a vectorized predicate, or returns nil
// when e contains a node outside the compilable subset.
func CompilePred(e Expr) BatchPred {
	switch n := e.(type) {
	case Const:
		bv, ok := n.Val.AsBool()
		code := RowMalformed
		if ok {
			if bv {
				code = RowPass
			} else {
				code = RowFail
			}
		}
		return func(b *tuple.Batch, out []int8) {
			for i := range out {
				out[i] = code
			}
		}
	case Col:
		name := n.Name
		return func(b *tuple.Batch, out []int8) {
			c, ok := b.ColIndex(name)
			if !ok {
				fill(out, RowMalformed)
				return
			}
			for i := range out {
				out[i] = boolCode(b.At(i, c))
			}
		}
	case Cmp:
		return compileCmp(n)
	case And:
		l, r := CompilePred(n.L), CompilePred(n.R)
		if l == nil || r == nil {
			return nil
		}
		var scratch []int8
		return func(b *tuple.Batch, out []int8) {
			l(b, out)
			scratch = resize(scratch, len(out))
			r(b, scratch)
			for i, lv := range out {
				// Short-circuit: false left decides, malformed left poisons.
				if lv == RowPass {
					out[i] = scratch[i]
				}
			}
		}
	case Or:
		l, r := CompilePred(n.L), CompilePred(n.R)
		if l == nil || r == nil {
			return nil
		}
		var scratch []int8
		return func(b *tuple.Batch, out []int8) {
			l(b, out)
			scratch = resize(scratch, len(out))
			r(b, scratch)
			for i, lv := range out {
				if lv == RowFail {
					out[i] = scratch[i]
				}
			}
		}
	case Not:
		inner := CompilePred(n.E)
		if inner == nil {
			return nil
		}
		return func(b *tuple.Batch, out []int8) {
			inner(b, out)
			for i, v := range out {
				switch v {
				case RowPass:
					out[i] = RowFail
				case RowFail:
					out[i] = RowPass
				}
			}
		}
	default:
		return nil
	}
}

// operand loads one side of a comparison for every row. It returns the
// value and false when the row is malformed for this operand.
type operand func(b *tuple.Batch, col int, i int) (tuple.Value, bool)

// compileCmp handles Cmp whose operands are Col or Const.
func compileCmp(c Cmp) BatchPred {
	op := c.Op
	lcol, lConst, lok := cmpOperand(c.L)
	rcol, rConst, rok := cmpOperand(c.R)
	if !lok || !rok {
		return nil
	}
	tbl := cmpTable(op)
	return func(b *tuple.Batch, out []int8) {
		li, ri := -1, -1
		if lcol != "" {
			ci, ok := b.ColIndex(lcol)
			if !ok {
				fill(out, RowMalformed)
				return
			}
			li = ci
		}
		if rcol != "" {
			ci, ok := b.ColIndex(rcol)
			if !ok {
				fill(out, RowMalformed)
				return
			}
			ri = ci
		}
		if b.CmpKernel(li, lConst, ri, rConst, &tbl, out) {
			return
		}
		for i := range out {
			lv := lConst
			if li >= 0 {
				lv = b.At(i, li)
			}
			rv := rConst
			if ri >= 0 {
				rv = b.At(i, ri)
			}
			cmp, ok := tuple.Compare(lv, rv)
			if !ok {
				out[i] = RowMalformed
				continue
			}
			out[i] = tbl[cmp+1]
		}
	}
}

// cmpTable precomputes op's tri-state for each Compare outcome, indexed
// by cmp+1, so the per-row loop does a table load instead of a switch.
func cmpTable(op CmpOp) (tbl [3]int8) {
	for cmp := -1; cmp <= 1; cmp++ {
		tbl[cmp+1] = cmpCode(op, cmp)
	}
	return tbl
}

// cmpOperand classifies a comparison operand: (column name, "", true)
// for Col, ("", value, true) for Const, ok=false otherwise.
func cmpOperand(e Expr) (col string, v tuple.Value, ok bool) {
	switch n := e.(type) {
	case Col:
		return n.Name, tuple.Value{}, true
	case Const:
		return "", n.Val, true
	default:
		return "", tuple.Value{}, false
	}
}

func cmpCode(op CmpOp, cmp int) int8 {
	var b bool
	switch op {
	case EQ:
		b = cmp == 0
	case NE:
		b = cmp != 0
	case LT:
		b = cmp < 0
	case LE:
		b = cmp <= 0
	case GT:
		b = cmp > 0
	case GE:
		b = cmp >= 0
	}
	if b {
		return RowPass
	}
	return RowFail
}

func boolCode(v tuple.Value) int8 {
	b, ok := v.AsBool()
	if !ok {
		return RowMalformed
	}
	if b {
		return RowPass
	}
	return RowFail
}

func fill(out []int8, code int8) {
	for i := range out {
		out[i] = code
	}
}

func resize(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}
