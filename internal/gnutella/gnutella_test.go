package gnutella

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/sim"
)

func buildNetwork(t *testing.T, seed int64, n, degree int) (*sim.Env, []*Peer) {
	t.Helper()
	env := sim.NewEnv(sim.Options{Seed: seed})
	nodes := env.SpawnN("g", n)
	peers := make([]*Peer, n)
	for i, nd := range nodes {
		p, err := NewPeer(nd, Config{})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	WireRandomGraph(peers, degree, env.Rand())
	return env, peers
}

func TestLocalHitImmediate(t *testing.T) {
	env, peers := buildNetwork(t, 1, 4, 3)
	peers[0].Share("song.mp3", []string{"song", "music"})
	var hits []Hit
	peers[0].Search([]string{"song"}, func(h Hit) { hits = append(hits, h) })
	env.Run(time.Second)
	if len(hits) != 1 || hits[0].File != "song.mp3" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestFloodFindsRemoteFile(t *testing.T) {
	env, peers := buildNetwork(t, 2, 20, 4)
	peers[15].Share("rare.mp3", []string{"rare", "unique"})
	var hits []Hit
	peers[0].Search([]string{"rare"}, func(h Hit) { hits = append(hits, h) })
	env.Run(10 * time.Second)
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Peer != peers[15].rt.Addr() {
		t.Errorf("hit came from %s", hits[0].Peer)
	}
}

func TestMultiKeywordANDSemantics(t *testing.T) {
	env, peers := buildNetwork(t, 3, 10, 3)
	peers[4].Share("both.mp3", []string{"alpha", "beta"})
	peers[5].Share("onlyalpha.mp3", []string{"alpha"})
	var hits []Hit
	peers[0].Search([]string{"alpha", "beta"}, func(h Hit) { hits = append(hits, h) })
	env.Run(10 * time.Second)
	if len(hits) != 1 || hits[0].File != "both.mp3" {
		t.Fatalf("AND semantics violated: %v", hits)
	}
}

func TestTTLBoundsReach(t *testing.T) {
	// A line topology: TTL 2 cannot reach a file 5 hops away.
	env := sim.NewEnv(sim.Options{Seed: 4})
	nodes := env.SpawnN("g", 8)
	peers := make([]*Peer, len(nodes))
	for i, nd := range nodes {
		p, err := NewPeer(nd, Config{})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		if i > 0 {
			p.AddNeighbor(peers[i-1].rt.Addr())
			peers[i-1].AddNeighbor(p.rt.Addr())
		}
	}
	peers[7].Share("far.mp3", []string{"far"})
	var hits []Hit
	peers[0].SearchTTL([]string{"far"}, 2, func(h Hit) { hits = append(hits, h) })
	env.Run(10 * time.Second)
	if len(hits) != 0 {
		t.Fatalf("TTL 2 reached 7 hops: %v", hits)
	}
	// TTL 7 reaches it.
	peers[0].SearchTTL([]string{"far"}, 7, func(h Hit) { hits = append(hits, h) })
	env.Run(10 * time.Second)
	if len(hits) != 1 {
		t.Fatalf("TTL 7 did not reach: %v", hits)
	}
}

func TestDuplicateSuppressionBoundsTraffic(t *testing.T) {
	env, peers := buildNetwork(t, 5, 15, 4)
	peers[0].Search([]string{"nothing"}, nil)
	env.Run(10 * time.Second)
	// Each peer processes the query at most once.
	for i, p := range peers {
		seen, _ := p.Stats()
		if seen > 1 {
			t.Errorf("peer %d processed query %d times", i, seen)
		}
	}
}

func TestReplicatedContentFoundFaster(t *testing.T) {
	// The Figure-1 mechanism in miniature: a widely replicated file is
	// found strictly sooner than a singleton file in the same network.
	env, peers := buildNetwork(t, 6, 40, 4)
	for i := 0; i < 20; i++ { // popular: half the network shares it
		peers[(i*2+1)%40].Share("popular.mp3", []string{"popular"})
	}
	peers[33].Share("rare.mp3", []string{"rareword"})

	start := env.Now()
	var popLatency, rareLatency time.Duration
	peers[0].Search([]string{"popular"}, func(Hit) {
		if popLatency == 0 {
			popLatency = env.Now().Sub(start)
		}
	})
	peers[0].Search([]string{"rareword"}, func(Hit) {
		if rareLatency == 0 {
			rareLatency = env.Now().Sub(start)
		}
	})
	env.Run(30 * time.Second)
	if popLatency == 0 {
		t.Fatal("popular file not found")
	}
	if rareLatency == 0 {
		t.Skip("rare file outside flood horizon for this seed (itself the Figure-1 effect)")
	}
	if popLatency > rareLatency {
		t.Errorf("popular (%v) slower than rare (%v)", popLatency, rareLatency)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		env, peers := buildNetwork(t, 7, 12, 3)
		peers[9].Share("x.mp3", []string{"x"})
		var log string
		peers[0].Search([]string{"x"}, func(h Hit) {
			log += fmt.Sprintf("%s@%d;", h.File, env.Now().UnixNano())
		})
		env.Run(10 * time.Second)
		return log
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %q vs %q", a, b)
	}
}
