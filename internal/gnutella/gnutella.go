// Package gnutella implements a Gnutella-style flooding search overlay —
// the baseline system PIER was measured against in the paper's
// filesharing study (Figure 1, [41], [43]).
//
// Gnutella circa 2004: peers form an unstructured random graph; each
// peer holds a local keyword index of its own shared files; a query
// floods outward with a TTL, every peer matching it against its local
// index and returning hits directly to the query's origin. Flooding
// finds widely replicated ("popular") content within a couple of hops,
// but rare items — replicated on a handful of peers — are likely to sit
// outside the TTL horizon, so rare queries return few or no results, and
// slowly. That asymmetry is exactly what PIER's DHT-indexed search
// removes, and what the Figure 1 benchmark reproduces.
package gnutella

import (
	"fmt"
	"sort"
	"strings"

	"pier/internal/vri"
	"pier/internal/wire"
)

// Port is the gnutella protocol port within a node.
const Port vri.Port = 9

// Message kinds.
const (
	msgQuery = iota + 1
	msgHit
)

// Config parameterizes a peer.
type Config struct {
	// DefaultTTL bounds flooding depth. Gnutella's classic default is 7.
	DefaultTTL int
	// MaxResultsPerPeer caps hits one peer returns per query.
	MaxResultsPerPeer int
}

func (c *Config) fill() {
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 7
	}
	if c.MaxResultsPerPeer <= 0 {
		c.MaxResultsPerPeer = 50
	}
}

// Hit is one search result.
type Hit struct {
	File string
	Peer vri.Addr
}

// Peer is one Gnutella node.
type Peer struct {
	rt  vri.Runtime
	cfg Config

	neighbors []vri.Addr
	// index maps keyword → file names shared locally.
	index map[string][]string
	// seen deduplicates flooded queries.
	seen map[string]struct{}
	// pending holds this peer's own outstanding searches.
	pending  map[string]func(Hit)
	querySeq uint64

	// Stats.
	msgsForwarded uint64
	queriesSeen   uint64
}

// NewPeer creates a peer and binds its protocol port.
func NewPeer(rt vri.Runtime, cfg Config) (*Peer, error) {
	cfg.fill()
	p := &Peer{
		rt:      rt,
		cfg:     cfg,
		index:   make(map[string][]string),
		seen:    make(map[string]struct{}),
		pending: make(map[string]func(Hit)),
	}
	if err := rt.Listen(Port, p.handle); err != nil {
		return nil, err
	}
	return p, nil
}

// Close releases the protocol port.
func (p *Peer) Close() { p.rt.Release(Port) }

// AddNeighbor wires a (directed) overlay edge; call symmetrically for
// the usual undirected topology.
func (p *Peer) AddNeighbor(addr vri.Addr) {
	if addr == p.rt.Addr() {
		return
	}
	for _, n := range p.neighbors {
		if n == addr {
			return
		}
	}
	p.neighbors = append(p.neighbors, addr)
}

// Neighbors returns the peer's current neighbor set.
func (p *Peer) Neighbors() []vri.Addr { return p.neighbors }

// Share adds a file under its keywords to the local index.
func (p *Peer) Share(file string, keywords []string) {
	for _, kw := range keywords {
		kw = strings.ToLower(kw)
		p.index[kw] = append(p.index[kw], file)
	}
}

// Stats reports (queries seen, messages forwarded).
func (p *Peer) Stats() (seen, forwarded uint64) { return p.queriesSeen, p.msgsForwarded }

// Search floods a keyword query (AND semantics over keywords) with the
// default TTL. onHit fires for every result; Gnutella gives no
// completion signal — the caller times out, just like real clients.
func (p *Peer) Search(keywords []string, onHit func(Hit)) string {
	return p.SearchTTL(keywords, p.cfg.DefaultTTL, onHit)
}

// SearchTTL floods with an explicit TTL.
func (p *Peer) SearchTTL(keywords []string, ttl int, onHit func(Hit)) string {
	p.querySeq++
	id := fmt.Sprintf("%s#%d", p.rt.Addr(), p.querySeq)
	p.pending[id] = onHit
	p.seen[id] = struct{}{}
	// Match locally first (a real servent searches its own share).
	for _, f := range p.match(keywords) {
		if onHit != nil {
			onHit(Hit{File: f, Peer: p.rt.Addr()})
		}
	}
	p.flood(id, keywords, ttl, p.rt.Addr(), "")
	return id
}

// Cancel forgets an outstanding search.
func (p *Peer) Cancel(id string) { delete(p.pending, id) }

// match returns local files carrying every queried keyword, in name
// order. The canonical order matters twice: the per-peer result cap must
// select the same files every run, and hit-message payloads must be
// byte-identical for the simulator's deterministic-replay guarantee —
// both of which Go's randomized map iteration would break.
func (p *Peer) match(keywords []string) []string {
	if len(keywords) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, kw := range keywords {
		for _, f := range p.index[strings.ToLower(kw)] {
			counts[f]++
		}
	}
	var out []string
	for f, c := range counts {
		if c >= len(keywords) {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	if len(out) > p.cfg.MaxResultsPerPeer {
		out = out[:p.cfg.MaxResultsPerPeer]
	}
	return out
}

func encodeQuery(id string, keywords []string, ttl int, origin vri.Addr) []byte {
	w := wire.NewWriter(64)
	w.U8(msgQuery)
	w.String(id)
	w.U16(uint16(ttl))
	w.String(string(origin))
	w.U16(uint16(len(keywords)))
	for _, kw := range keywords {
		w.String(kw)
	}
	return w.Bytes()
}

// flood forwards the query to every neighbor except the one it came
// from.
func (p *Peer) flood(id string, keywords []string, ttl int, origin, from vri.Addr) {
	if ttl <= 0 {
		return
	}
	payload := encodeQuery(id, keywords, ttl-1, origin)
	for _, n := range p.neighbors {
		if n == from {
			continue
		}
		p.msgsForwarded++
		p.rt.Send(n, Port, payload, nil)
	}
}

func (p *Peer) handle(src vri.Addr, payload []byte) {
	r := wire.NewReader(payload)
	switch r.U8() {
	case msgQuery:
		id := r.String()
		ttl := int(r.U16())
		origin := vri.Addr(r.String())
		nk := int(r.U16())
		keywords := make([]string, 0, nk)
		for i := 0; i < nk && r.Err() == nil; i++ {
			keywords = append(keywords, r.String())
		}
		if r.Err() != nil {
			return
		}
		if _, dup := p.seen[id]; dup {
			return
		}
		p.seen[id] = struct{}{}
		p.queriesSeen++
		// Reply with local hits directly to the origin.
		if hits := p.match(keywords); len(hits) > 0 {
			w := wire.NewWriter(64)
			w.U8(msgHit)
			w.String(id)
			w.U16(uint16(len(hits)))
			for _, f := range hits {
				w.String(f)
			}
			p.rt.Send(origin, Port, w.Bytes(), nil)
		}
		p.flood(id, keywords, ttl, origin, src)

	case msgHit:
		id := r.String()
		n := int(r.U16())
		files := make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			files = append(files, r.String())
		}
		if r.Err() != nil {
			return
		}
		onHit := p.pending[id]
		if onHit == nil {
			return
		}
		for _, f := range files {
			onHit(Hit{File: f, Peer: src})
		}
	}
}

// WireRandomGraph connects peers into a connected random graph with
// average degree roughly degree: a ring (guaranteeing connectivity) plus
// random chords, the standard Gnutella-like topology used in p2p search
// studies.
func WireRandomGraph(peers []*Peer, degree int, rnd interface{ Intn(int) int }) {
	n := len(peers)
	if n < 2 {
		return
	}
	for i, p := range peers {
		next := peers[(i+1)%n]
		p.AddNeighbor(next.rt.Addr())
		next.AddNeighbor(p.rt.Addr())
	}
	extra := degree - 2
	for i, p := range peers {
		for e := 0; e < extra; e++ {
			j := rnd.Intn(n)
			if j == i {
				continue
			}
			p.AddNeighbor(peers[j].rt.Addr())
			peers[j].AddNeighbor(p.rt.Addr())
		}
	}
}
