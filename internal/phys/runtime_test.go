package phys

import (
	"sync"
	"testing"
	"time"

	"pier/internal/vri"
)

func newPair(t *testing.T) (*Runtime, *Runtime) {
	t.Helper()
	a, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 2})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// waitFor polls cond (under mu) until it is true or the deadline passes.
func waitFor(t *testing.T, mu *sync.Mutex, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		mu.Lock()
		ok := cond()
		mu.Unlock()
		if ok {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func TestPhysSendDeliversAndAcks(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	var got []byte
	var acked bool
	if err := b.Listen(vri.PortQuery, func(src vri.Addr, p []byte) {
		mu.Lock()
		got = append([]byte(nil), p...)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	a.Send(b.Addr(), vri.PortQuery, []byte("over real udp"), func(ok bool) {
		mu.Lock()
		acked = ok
		mu.Unlock()
	})
	if !waitFor(t, &mu, 3*time.Second, func() bool { return string(got) == "over real udp" && acked }) {
		t.Fatalf("delivery/ack missing: got=%q acked=%v", got, acked)
	}
}

func TestPhysSendToUnreachableNacks(t *testing.T) {
	a, err := New(Config{Seed: 1, RTO: 20 * time.Millisecond, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var mu sync.Mutex
	result := -1
	// 203.0.113.0/24 is TEST-NET-3: guaranteed unreachable.
	a.Send("203.0.113.1:9", vri.PortQuery, []byte("x"), func(ok bool) {
		mu.Lock()
		if ok {
			result = 1
		} else {
			result = 0
		}
		mu.Unlock()
	})
	if !waitFor(t, &mu, 5*time.Second, func() bool { return result == 0 }) {
		t.Fatalf("result = %d, want nack", result)
	}
}

func TestPhysManyMessagesAllDelivered(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	seen := make(map[byte]bool)
	_ = b.Listen(vri.PortOverlay, func(_ vri.Addr, p []byte) {
		mu.Lock()
		seen[p[0]] = true
		mu.Unlock()
	})
	const n = 100
	for i := 0; i < n; i++ {
		a.Send(b.Addr(), vri.PortOverlay, []byte{byte(i)}, nil)
	}
	if !waitFor(t, &mu, 5*time.Second, func() bool { return len(seen) == n }) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("delivered %d/%d distinct messages", len(seen), n)
	}
}

func TestPhysScheduleFiresInOrder(t *testing.T) {
	a, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var mu sync.Mutex
	var order []int
	a.Schedule(60*time.Millisecond, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	a.Schedule(20*time.Millisecond, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	a.Schedule(40*time.Millisecond, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	if !waitFor(t, &mu, 2*time.Second, func() bool { return len(order) == 3 }) {
		t.Fatal("timers did not all fire")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPhysTimerCancel(t *testing.T) {
	a, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var mu sync.Mutex
	fired := false
	tm := a.Schedule(50*time.Millisecond, func() { mu.Lock(); fired = true; mu.Unlock() })
	tm.Cancel()
	time.Sleep(150 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestPhysStreamRoundTrip(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	srv := &collectHandler{mu: &mu}
	if err := b.ListenStream(vri.PortClient, srv); err != nil {
		t.Fatal(err)
	}
	cli := &collectHandler{mu: &mu}
	conn, err := a.Connect(b.Addr(), vri.PortClient, cli)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("ping"))
	if !waitFor(t, &mu, 3*time.Second, func() bool { return len(srv.conns) == 1 && len(srv.data) == 1 }) {
		t.Fatalf("server state: conns=%d data=%d", len(srv.conns), len(srv.data))
	}
	mu.Lock()
	serverConn := srv.conns[0]
	gotPing := string(srv.data[0])
	mu.Unlock()
	if gotPing != "ping" {
		t.Fatalf("server got %q", gotPing)
	}
	serverConn.Write([]byte("pong"))
	if !waitFor(t, &mu, 3*time.Second, func() bool { return len(cli.data) == 1 && string(cli.data[0]) == "pong" }) {
		t.Fatal("client did not get pong")
	}
}

func TestPhysStreamFramingPreserved(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	srv := &collectHandler{mu: &mu}
	_ = b.ListenStream(vri.PortClient, srv)
	conn, err := a.Connect(b.Addr(), vri.PortClient, &collectHandler{mu: &mu})
	if err != nil {
		t.Fatal(err)
	}
	writes := []string{"a", "bb", "ccc", "dddd"}
	for _, w := range writes {
		conn.Write([]byte(w))
	}
	if !waitFor(t, &mu, 3*time.Second, func() bool { return len(srv.data) == len(writes) }) {
		t.Fatalf("got %d frames, want %d", len(srv.data), len(writes))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, w := range writes {
		if string(srv.data[i]) != w {
			t.Errorf("frame %d = %q, want %q", i, srv.data[i], w)
		}
	}
}

type collectHandler struct {
	mu    *sync.Mutex
	conns []vri.Conn
	data  [][]byte
	errs  []error
}

func (h *collectHandler) HandleConn(c vri.Conn) {
	h.mu.Lock()
	h.conns = append(h.conns, c)
	h.mu.Unlock()
}
func (h *collectHandler) HandleData(_ vri.Conn, d []byte) {
	h.mu.Lock()
	h.data = append(h.data, d)
	h.mu.Unlock()
}
func (h *collectHandler) HandleError(_ vri.Conn, err error) {
	h.mu.Lock()
	h.errs = append(h.errs, err)
	h.mu.Unlock()
}
