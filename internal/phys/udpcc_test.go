package phys

import (
	"sync/atomic"
	"testing"
	"time"

	"pier/internal/vri"
)

// newTestPair brings up two runtimes on loopback with fast timeouts so
// loss-injection tests complete quickly.
func newTestPair(t *testing.T, maxRetries int) (a, b *Runtime) {
	t.Helper()
	var err error
	a, err = New(Config{RTO: 30 * time.Millisecond, MaxRetries: maxRetries, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err = New(Config{RTO: 30 * time.Millisecond, MaxRetries: maxRetries, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return a, b
}

// await polls cond (which must be goroutine-safe) until it holds or the
// deadline passes.
func await(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// onScheduler runs fn on rt's Main Scheduler goroutine and waits for it,
// giving tests race-free access to udpcc state.
func onScheduler(rt *Runtime, fn func()) {
	done := make(chan struct{})
	rt.Schedule(0, func() { fn(); close(done) })
	<-done
}

// TestUDPCCRetransmitsThroughLoss drops the first two data transmissions
// of every message and checks UdpCC still delivers exactly once and
// reports success — the reliable half of reliable-or-notified (§3.1.3).
func TestUDPCCRetransmitsThroughLoss(t *testing.T) {
	a, b := newTestPair(t, 6)
	var dataSends, dropped atomic.Int64
	a.dropOutbound = func(_ vri.Addr, pkt []byte) bool {
		if len(pkt) > 0 && pkt[0] == pktData {
			if n := dataSends.Add(1); n <= 2 {
				dropped.Add(1)
				return true
			}
		}
		return false
	}
	var delivered atomic.Int64
	if err := b.Listen(vri.PortQuery, func(src vri.Addr, p []byte) {
		if string(p) == "payload" {
			delivered.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	a.Send(b.Addr(), vri.PortQuery, []byte("payload"), func(ok bool) {
		if ok {
			acked.Add(1)
		} else {
			acked.Add(-100)
		}
	})
	await(t, 5*time.Second, func() bool { return acked.Load() == 1 }, "sender never saw a positive ack")
	if got := delivered.Load(); got != 1 {
		t.Fatalf("delivered %d times, want exactly 1", got)
	}
	if dropped.Load() != 2 || dataSends.Load() < 3 {
		t.Fatalf("expected 2 drops then a successful retransmission, got drops=%d sends=%d",
			dropped.Load(), dataSends.Load())
	}
}

// TestUDPCCDuplicateSuppressionUnderAckLoss drops every ack the receiver
// sends: the sender retransmits until retries are exhausted and reports
// failure, while the receiver must still deliver the payload exactly
// once. This is the notified half of reliable-or-notified — the sender
// may be told "failed" even though delivery happened, but it is never
// left in the dark.
func TestUDPCCDuplicateSuppressionUnderAckLoss(t *testing.T) {
	a, b := newTestPair(t, 3)
	b.dropOutbound = func(_ vri.Addr, pkt []byte) bool {
		return len(pkt) > 0 && pkt[0] == pktAck
	}
	var delivered atomic.Int64
	if err := b.Listen(vri.PortQuery, func(vri.Addr, []byte) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	result := make(chan bool, 1)
	a.Send(b.Addr(), vri.PortQuery, []byte("x"), func(ok bool) { result <- ok })
	select {
	case ok := <-result:
		if ok {
			t.Fatal("sender reported success though every ack was dropped")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sender never notified of delivery outcome")
	}
	if got := delivered.Load(); got != 1 {
		t.Fatalf("receiver delivered %d times, want exactly 1 (duplicate suppression)", got)
	}
}

// TestUDPCCAIMDWindow checks both halves of AIMD: the congestion window
// grows additively past its initial value under a healthy ack stream,
// and collapses multiplicatively (floored at 1) when timeouts hit.
func TestUDPCCAIMDWindow(t *testing.T) {
	a, b := newTestPair(t, 2)
	if err := b.Listen(vri.PortQuery, func(vri.Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	const burst = 64
	var acks atomic.Int64
	for i := 0; i < burst; i++ {
		a.Send(b.Addr(), vri.PortQuery, []byte("grow"), func(ok bool) {
			if ok {
				acks.Add(1)
			}
		})
	}
	await(t, 5*time.Second, func() bool { return acks.Load() == burst }, "burst not fully acked")
	var grown float64
	onScheduler(a, func() { grown = a.cc.flow(b.Addr()).cwnd })
	if grown <= initialWindow {
		t.Fatalf("cwnd = %.2f after %d acks, want additive growth beyond %d", grown, burst, initialWindow)
	}

	// Now black-hole the link: timeouts must halve the window down to
	// its floor of 1 while the send fails over to notification.
	a.dropOutbound = func(_ vri.Addr, pkt []byte) bool { return true }
	nacked := make(chan struct{})
	a.Send(b.Addr(), vri.PortQuery, []byte("shrink"), func(ok bool) {
		if !ok {
			close(nacked)
		}
	})
	select {
	case <-nacked:
	case <-time.After(10 * time.Second):
		t.Fatal("send through a black hole was never notified")
	}
	var shrunk float64
	onScheduler(a, func() { shrunk = a.cc.flow(b.Addr()).cwnd })
	if shrunk >= grown {
		t.Fatalf("cwnd = %.2f after repeated timeouts, want multiplicative decrease from %.2f", shrunk, grown)
	}
	if shrunk < 1 {
		t.Fatalf("cwnd = %.2f fell below the floor of 1", shrunk)
	}
}

// TestUDPCCWindowQueueDrains exceeds the initial window many times over
// in one shot and checks every message is eventually delivered and
// acked: queued messages must enter the window as acks open it up.
func TestUDPCCWindowQueueDrains(t *testing.T) {
	a, b := newTestPair(t, 5)
	const total = 200 // >> initialWindow
	var delivered atomic.Int64
	if err := b.Listen(vri.PortQuery, func(vri.Addr, []byte) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	for i := 0; i < total; i++ {
		a.Send(b.Addr(), vri.PortQuery, []byte("q"), func(ok bool) {
			if ok {
				acked.Add(1)
			}
		})
	}
	await(t, 10*time.Second, func() bool {
		return acked.Load() == total && delivered.Load() == total
	}, "window queue did not drain every message")
}
