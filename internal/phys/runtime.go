// Package phys implements PIER's Physical Runtime Environment (paper
// §3.1.3, Figure 3): the binding of the Virtual Runtime Interface to the
// real system clock, a Main Scheduler with a single priority queue of
// events, an asynchronous I/O goroutine, and IP-based networking.
//
// All program logic (overlay, query processor) runs on the Main Scheduler
// goroutine, preserving the single-threaded event-handler discipline of
// §3.1.2. The I/O goroutine only moves raw datagrams between the socket
// and the scheduler queue, marshaling and unmarshaling on the way —
// exactly the division of labor in Figure 3.
//
// UDP is the primary transport. Since UDP offers neither delivery
// acknowledgment nor congestion control, the package layers a UdpCC-style
// protocol on top (udpcc.go): per-message acks, retransmission with
// backoff, and an AIMD congestion window per destination. Like UdpCC, it
// provides reliable-or-notified delivery but not in-order delivery. TCP
// sessions (stream.go) are used for communication with user clients.
package phys

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pier/internal/vri"
)

// Config parameterizes a physical runtime.
type Config struct {
	// Bind is the UDP listen address, e.g. "127.0.0.1:0". The node's
	// vri.Addr is the resolved address after binding.
	Bind string
	// Seed seeds the node's random stream; 0 derives one from the bound
	// address and current time.
	Seed int64
	// RTO is the initial retransmission timeout. Defaults to 250ms.
	RTO time.Duration
	// MaxRetries bounds retransmissions before reporting failure.
	// Defaults to 5.
	MaxRetries int
}

// timerEvent is one entry in the Main Scheduler's priority queue.
type timerEvent struct {
	at  time.Time
	seq uint64
	fn  func()
	// cancelled is atomic: Cancel may race with the scheduler goroutine
	// inspecting the heap.
	cancelled atomic.Bool
}

type timerHeap []*timerEvent

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timerEvent)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Runtime is one node's Physical Runtime Environment. It implements
// vri.StreamRuntime.
type Runtime struct {
	cfg  Config
	addr vri.Addr
	conn *net.UDPConn
	rng  *rand.Rand

	// events carries work posted from I/O goroutines onto the Main
	// Scheduler.
	events chan func()
	done   chan struct{}
	wg     sync.WaitGroup

	// Scheduler-owned state; touched only on the scheduler goroutine
	// (except via events channel).
	mu       sync.Mutex // protects timers for cross-goroutine Schedule
	timers   timerHeap
	seq      uint64
	wake     chan struct{}
	handlers map[vri.Port]vri.MessageHandler
	streams  map[vri.Port]*streamListener
	conns    map[*physConn]struct{}

	cc *udpcc

	// dropOutbound, when non-nil, injects datagram loss for tests:
	// packets for which it returns true are discarded instead of
	// written to the socket. Set it before any traffic flows; it is
	// invoked on the scheduler goroutine.
	dropOutbound func(dst vri.Addr, pkt []byte) bool
}

var _ vri.StreamRuntime = (*Runtime)(nil)

// New creates and starts a physical runtime bound to cfg.Bind.
func New(cfg Config) (*Runtime, error) {
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 250 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("phys: resolve %q: %w", cfg.Bind, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("phys: listen: %w", err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ int64(conn.LocalAddr().(*net.UDPAddr).Port)
	}
	r := &Runtime{
		cfg:      cfg,
		addr:     vri.Addr(conn.LocalAddr().String()),
		conn:     conn,
		rng:      rand.New(rand.NewSource(seed)),
		events:   make(chan func(), 1024),
		done:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
		handlers: make(map[vri.Port]vri.MessageHandler),
		streams:  make(map[vri.Port]*streamListener),
		conns:    make(map[*physConn]struct{}),
	}
	r.cc = newUDPCC(r)
	r.wg.Add(2)
	go r.schedulerLoop()
	go r.readLoop()
	return r, nil
}

// Close shuts the runtime down: the scheduler stops, sockets close, and
// background goroutines exit.
func (r *Runtime) Close() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.done)
	r.conn.Close()
	r.mu.Lock()
	for _, l := range r.streams {
		l.close()
	}
	conns := make([]*physConn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	r.wg.Wait()
}

// Addr returns the node's bound UDP address.
func (r *Runtime) Addr() vri.Addr { return r.addr }

// Now returns wall-clock time.
func (r *Runtime) Now() time.Time { return time.Now() }

// Rand returns the node's random stream. It must only be used from the
// scheduler goroutine, like all PIER program logic.
func (r *Runtime) Rand() *rand.Rand { return r.rng }

// Schedule enqueues fn on the Main Scheduler after delay. Safe to call
// from any goroutine.
func (r *Runtime) Schedule(delay time.Duration, fn func()) vri.Timer {
	ev := &timerEvent{at: time.Now().Add(delay), fn: fn}
	r.mu.Lock()
	r.seq++
	ev.seq = r.seq
	heap.Push(&r.timers, ev)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return physTimer{ev}
}

type physTimer struct{ ev *timerEvent }

func (t physTimer) Cancel() { t.ev.cancelled.Store(true) }

// post transfers fn onto the scheduler goroutine.
func (r *Runtime) post(fn func()) {
	select {
	case r.events <- fn:
	case <-r.done:
	}
}

// Listen registers a datagram handler for port.
func (r *Runtime) Listen(port vri.Port, h vri.MessageHandler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.handlers[port]; ok {
		return fmt.Errorf("phys: port %d already bound", port)
	}
	r.handlers[port] = h
	return nil
}

// Release removes the datagram handler for port.
func (r *Runtime) Release(port vri.Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.handlers, port)
}

// Send transmits payload to (dst, dstPort) via the UdpCC layer.
func (r *Runtime) Send(dst vri.Addr, dstPort vri.Port, payload []byte, ack vri.AckFunc) {
	p := make([]byte, len(payload))
	copy(p, payload)
	r.post(func() { r.cc.send(dst, dstPort, p, ack) })
}

// schedulerLoop is the Main Scheduler: it drains due timers and posted
// events on a single goroutine.
func (r *Runtime) schedulerLoop() {
	defer r.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		// Determine the next timer deadline.
		r.mu.Lock()
		var next *timerEvent
		for len(r.timers) > 0 {
			if r.timers[0].cancelled.Load() {
				heap.Pop(&r.timers)
				continue
			}
			next = r.timers[0]
			break
		}
		r.mu.Unlock()

		var timerC <-chan time.Time
		if next != nil {
			d := time.Until(next.at)
			if d < 0 {
				d = 0
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
			timerC = timer.C
		}

		select {
		case <-r.done:
			return
		case fn := <-r.events:
			fn()
		case <-r.wake:
			// New timer was scheduled; recompute deadline.
		case <-timerC:
			now := time.Now()
			for {
				r.mu.Lock()
				if len(r.timers) == 0 || r.timers[0].at.After(now) {
					r.mu.Unlock()
					break
				}
				ev := heap.Pop(&r.timers).(*timerEvent)
				r.mu.Unlock()
				if !ev.cancelled.Load() {
					ev.fn()
				}
			}
		}
	}
}

// readLoop is the asynchronous I/O goroutine of Figure 3: it receives raw
// datagrams, and posts the unmarshaled events onto the Main Scheduler's
// queue.
func (r *Runtime) readLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		src := vri.Addr(raddr.String())
		r.post(func() { r.cc.receive(src, pkt) })
	}
}

// dispatch delivers an application payload to the bound port handler.
func (r *Runtime) dispatch(src vri.Addr, port vri.Port, payload []byte) {
	r.mu.Lock()
	h := r.handlers[port]
	r.mu.Unlock()
	if h != nil {
		h(src, payload)
	}
}

// writeDatagram sends one raw packet; called from the scheduler
// goroutine, but UDP writes do not block meaningfully.
func (r *Runtime) writeDatagram(dst vri.Addr, pkt []byte) error {
	if r.dropOutbound != nil && r.dropOutbound(dst, pkt) {
		return nil
	}
	udpAddr, err := net.ResolveUDPAddr("udp", string(dst))
	if err != nil {
		return err
	}
	_, err = r.conn.WriteToUDP(pkt, udpAddr)
	return err
}
