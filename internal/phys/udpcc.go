package phys

import (
	"encoding/binary"
	"time"

	"pier/internal/vri"
)

// udpcc implements a UdpCC-style reliability and congestion-control layer
// over raw UDP (paper §3.1.3): every message is tracked and either
// acknowledged by the receiver or reported failed to the sender after
// retransmissions are exhausted; a per-destination AIMD window provides
// TCP-style congestion control. In-order delivery is deliberately NOT
// guaranteed — upper layers (the overlay and query processor) are
// designed not to need it.
//
// Wire format (all integers big-endian):
//
//	byte  0     kind (0 = data, 1 = ack)
//	bytes 1..8  sequence number
//	data only:
//	bytes 9..12 destination port
//	bytes 13..  payload
type udpcc struct {
	rt      *Runtime
	nextSeq uint64
	flows   map[vri.Addr]*flow
}

const (
	pktData = 0
	pktAck  = 1

	dataHeaderLen = 13
	ackLen        = 9

	initialWindow = 4
	maxWindow     = 64
	dupWindow     = 4096 // receiver remembers this many seqs per peer
)

// flow is the per-destination congestion and reliability state.
type flow struct {
	cwnd     float64
	inFlight map[uint64]*pendingMsg
	queue    []*pendingMsg // waiting for window space
	srttNs   float64       // smoothed RTT estimate, nanoseconds
	// Receiver-side duplicate suppression.
	seen     map[uint64]struct{}
	seenRing []uint64
}

type pendingMsg struct {
	seq     uint64
	dst     vri.Addr
	port    vri.Port
	payload []byte
	ack     vri.AckFunc
	tries   int
	sentAt  time.Time
	timer   vri.Timer
}

func newUDPCC(rt *Runtime) *udpcc {
	return &udpcc{rt: rt, flows: make(map[vri.Addr]*flow)}
}

func (c *udpcc) flow(dst vri.Addr) *flow {
	f := c.flows[dst]
	if f == nil {
		f = &flow{
			cwnd:     initialWindow,
			inFlight: make(map[uint64]*pendingMsg),
			seen:     make(map[uint64]struct{}),
		}
		c.flows[dst] = f
	}
	return f
}

// send queues or transmits one message. Runs on the scheduler goroutine.
func (c *udpcc) send(dst vri.Addr, port vri.Port, payload []byte, ack vri.AckFunc) {
	c.nextSeq++
	m := &pendingMsg{seq: c.nextSeq, dst: dst, port: port, payload: payload, ack: ack}
	f := c.flow(dst)
	if float64(len(f.inFlight)) < f.cwnd {
		c.transmit(f, m)
	} else {
		f.queue = append(f.queue, m)
	}
}

func (c *udpcc) transmit(f *flow, m *pendingMsg) {
	m.tries++
	m.sentAt = time.Now()
	f.inFlight[m.seq] = m

	pkt := make([]byte, dataHeaderLen+len(m.payload))
	pkt[0] = pktData
	binary.BigEndian.PutUint64(pkt[1:9], m.seq)
	binary.BigEndian.PutUint32(pkt[9:13], uint32(m.port))
	copy(pkt[dataHeaderLen:], m.payload)
	_ = c.rt.writeDatagram(m.dst, pkt)

	rto := c.rto(f) << uint(m.tries-1) // exponential backoff
	m.timer = c.rt.Schedule(rto, func() { c.onTimeout(m) })
}

// rto derives the retransmission timeout from the smoothed RTT.
func (c *udpcc) rto(f *flow) time.Duration {
	if f.srttNs <= 0 {
		return c.rt.cfg.RTO
	}
	rto := time.Duration(f.srttNs * 2)
	if rto < 10*time.Millisecond {
		rto = 10 * time.Millisecond
	}
	if rto > 4*time.Second {
		rto = 4 * time.Second
	}
	return rto
}

func (c *udpcc) onTimeout(m *pendingMsg) {
	f := c.flow(m.dst)
	if _, still := f.inFlight[m.seq]; !still {
		return // acked in the meantime
	}
	// Multiplicative decrease.
	f.cwnd /= 2
	if f.cwnd < 1 {
		f.cwnd = 1
	}
	if m.tries > c.rt.cfg.MaxRetries {
		delete(f.inFlight, m.seq)
		if m.ack != nil {
			m.ack(false)
		}
		c.fillWindow(f)
		return
	}
	c.transmit(f, m)
}

// receive handles one raw packet from the I/O goroutine.
func (c *udpcc) receive(src vri.Addr, pkt []byte) {
	if len(pkt) < ackLen {
		return
	}
	seq := binary.BigEndian.Uint64(pkt[1:9])
	switch pkt[0] {
	case pktAck:
		c.onAck(src, seq)
	case pktData:
		if len(pkt) < dataHeaderLen {
			return
		}
		// Always re-ack, even duplicates: the ack may have been lost.
		ack := make([]byte, ackLen)
		ack[0] = pktAck
		binary.BigEndian.PutUint64(ack[1:9], seq)
		_ = c.rt.writeDatagram(src, ack)

		f := c.flow(src)
		if _, dup := f.seen[seq]; dup {
			return
		}
		f.seen[seq] = struct{}{}
		f.seenRing = append(f.seenRing, seq)
		if len(f.seenRing) > dupWindow {
			delete(f.seen, f.seenRing[0])
			f.seenRing = f.seenRing[1:]
		}
		port := vri.Port(binary.BigEndian.Uint32(pkt[9:13]))
		c.rt.dispatch(src, port, pkt[dataHeaderLen:])
	}
}

func (c *udpcc) onAck(src vri.Addr, seq uint64) {
	f := c.flow(src)
	m, ok := f.inFlight[seq]
	if !ok {
		return
	}
	delete(f.inFlight, seq)
	if m.timer != nil {
		m.timer.Cancel()
	}
	// RTT estimate (ignore retransmitted samples, Karn's rule).
	if m.tries == 1 {
		sample := float64(time.Since(m.sentAt))
		if f.srttNs == 0 {
			f.srttNs = sample
		} else {
			f.srttNs = 0.875*f.srttNs + 0.125*sample
		}
	}
	// Additive increase, one packet per window's worth of acks.
	if f.cwnd < maxWindow {
		f.cwnd += 1 / f.cwnd
	}
	if m.ack != nil {
		m.ack(true)
	}
	c.fillWindow(f)
}

// fillWindow transmits queued messages while window space is available.
func (c *udpcc) fillWindow(f *flow) {
	for len(f.queue) > 0 && float64(len(f.inFlight)) < f.cwnd {
		m := f.queue[0]
		f.queue = f.queue[1:]
		c.transmit(f, m)
	}
}
