package phys

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"pier/internal/vri"
)

// TCP streams for client↔proxy communication (§3.1.3): "TCP sessions are
// primarily used for communication with user clients."
//
// The runtime listens for TCP on the same numeric port as its UDP socket
// (the two port spaces are disjoint). Virtual ports are multiplexed over
// that one listener: a connecting peer sends a 4-byte virtual-port
// preamble, and every Write is framed with a 4-byte length prefix so
// HandleData receives exactly the chunks that were written.

// streamListener owns the node's single TCP accept loop and the
// per-virtual-port handler table.
type streamListener struct {
	rt *Runtime
	ln net.Listener

	mu       sync.Mutex
	handlers map[vri.Port]vri.StreamHandler
}

// ensureStreamListener lazily starts the TCP listener.
func (r *Runtime) ensureStreamListener() (*streamListener, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.streams[0]; ok {
		return l, nil
	}
	ln, err := net.Listen("tcp", string(r.addr))
	if err != nil {
		return nil, fmt.Errorf("phys: tcp listen %s: %w", r.addr, err)
	}
	l := &streamListener{rt: r, ln: ln, handlers: make(map[vri.Port]vri.StreamHandler)}
	// Slot 0 holds the shared listener; per-port handlers live inside it.
	r.streams[0] = l
	r.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// ListenStream registers h to accept TCP-multiplexed connections on the
// given virtual port.
func (r *Runtime) ListenStream(port vri.Port, h vri.StreamHandler) error {
	l, err := r.ensureStreamListener()
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.handlers[port]; ok {
		return fmt.Errorf("phys: stream port %d already bound", port)
	}
	l.handlers[port] = h
	return nil
}

// ReleaseStream unregisters the handler for port.
func (r *Runtime) ReleaseStream(port vri.Port) {
	r.mu.Lock()
	l := r.streams[0]
	r.mu.Unlock()
	if l == nil {
		return
	}
	l.mu.Lock()
	delete(l.handlers, port)
	l.mu.Unlock()
}

// Connect dials (dst, dstPort) over TCP.
func (r *Runtime) Connect(dst vri.Addr, dstPort vri.Port, h vri.StreamHandler) (vri.Conn, error) {
	nc, err := net.Dial("tcp", string(dst))
	if err != nil {
		return nil, fmt.Errorf("phys: connect %s: %w", dst, err)
	}
	var preamble [4]byte
	binary.BigEndian.PutUint32(preamble[:], uint32(dstPort))
	if _, err := nc.Write(preamble[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("phys: connect %s: %w", dst, err)
	}
	c := newPhysConn(r, nc, h)
	r.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (l *streamListener) close() { l.ln.Close() }

func (l *streamListener) acceptLoop() {
	defer l.rt.wg.Done()
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.rt.wg.Add(1)
		go l.serve(nc)
	}
}

func (l *streamListener) serve(nc net.Conn) {
	defer l.rt.wg.Done()
	var preamble [4]byte
	if _, err := io.ReadFull(nc, preamble[:]); err != nil {
		nc.Close()
		return
	}
	port := vri.Port(binary.BigEndian.Uint32(preamble[:]))
	l.mu.Lock()
	h := l.handlers[port]
	l.mu.Unlock()
	if h == nil {
		nc.Close()
		return
	}
	c := newPhysConn(l.rt, nc, h)
	l.rt.post(func() { h.HandleConn(c) })
	c.readLoopLocked() // reuse this goroutine as the connection reader
}

// physConn is one endpoint of a framed TCP connection. Write never
// blocks the caller: frames go through a buffered channel drained by a
// writer goroutine.
type physConn struct {
	rt      *Runtime
	nc      net.Conn
	handler vri.StreamHandler
	out     chan []byte
	closed  chan struct{}
	once    sync.Once
}

func newPhysConn(rt *Runtime, nc net.Conn, h vri.StreamHandler) *physConn {
	c := &physConn{rt: rt, nc: nc, handler: h, out: make(chan []byte, 256), closed: make(chan struct{})}
	rt.mu.Lock()
	rt.conns[c] = struct{}{}
	rt.mu.Unlock()
	rt.wg.Add(1)
	go c.writeLoop()
	return c
}

func (c *physConn) RemoteAddr() vri.Addr { return vri.Addr(c.nc.RemoteAddr().String()) }

func (c *physConn) Write(data []byte) {
	frame := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(data)))
	copy(frame[4:], data)
	select {
	case c.out <- frame:
	case <-c.closed:
	}
}

func (c *physConn) Close() {
	c.once.Do(func() {
		close(c.closed)
		c.nc.Close()
		c.rt.mu.Lock()
		delete(c.rt.conns, c)
		c.rt.mu.Unlock()
	})
}

func (c *physConn) writeLoop() {
	defer c.rt.wg.Done()
	for {
		select {
		case frame := <-c.out:
			if _, err := c.nc.Write(frame); err != nil {
				c.fail(err)
				return
			}
		case <-c.closed:
			return
		}
	}
}

func (c *physConn) readLoop() {
	defer c.rt.wg.Done()
	c.readLoopLocked()
}

// readLoopLocked reads length-prefixed frames until error and posts each
// onto the Main Scheduler.
func (c *physConn) readLoopLocked() {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > 16<<20 {
			c.fail(fmt.Errorf("phys: oversized frame (%d bytes)", n))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c.nc, buf); err != nil {
			c.fail(err)
			return
		}
		c.rt.post(func() { c.handler.HandleData(c, buf) })
	}
}

func (c *physConn) fail(err error) {
	select {
	case <-c.closed:
		return // deliberate local close; no error event
	default:
	}
	c.Close()
	c.rt.post(func() { c.handler.HandleError(c, err) })
}
