// Package metrics provides the measurement helpers the experiment
// harness uses to regenerate the paper's figures: latency recorders with
// CDF extraction (Figure 1 is a CDF of first-result latency) and simple
// counters/tallies for bandwidth and fidelity accounting.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// LatencyRecorder accumulates durations; a recorded "miss" (no result
// before timeout) is kept separately so CDFs can show recall plateaus
// the way Figure 1 does (curves that never reach 100%).
type LatencyRecorder struct {
	samples []time.Duration
	misses  int
}

// Record adds one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) { r.samples = append(r.samples, d) }

// Miss records a query that produced no result.
func (r *LatencyRecorder) Miss() { r.misses++ }

// Count returns (hits, misses).
func (r *LatencyRecorder) Count() (hits, misses int) { return len(r.samples), r.misses }

// Percentile returns the p'th percentile (0–100) of recorded latencies,
// counting misses as +infinity. ok is false if that percentile falls in
// the misses.
func (r *LatencyRecorder) Percentile(p float64) (time.Duration, bool) {
	total := len(r.samples) + r.misses
	if total == 0 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(total))
	// p == 100 (or float rounding) indexes one past the population; the
	// top of the distribution is the last sample unless misses occupy it.
	if idx >= total {
		idx = total - 1
	}
	if idx >= len(sorted) {
		return 0, false // that rank falls in the misses (+infinity tail)
	}
	return sorted[idx], true
}

// CDFPoint is one point of a cumulative distribution: the percentage of
// queries answered within Latency.
type CDFPoint struct {
	Latency time.Duration
	Percent float64
}

// CDF returns the distribution at each recorded sample, with misses
// flattening the curve below 100% — the exact shape of Figure 1.
func (r *LatencyRecorder) CDF() []CDFPoint {
	total := len(r.samples) + r.misses
	if total == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]CDFPoint, len(sorted))
	for i, d := range sorted {
		out[i] = CDFPoint{Latency: d, Percent: float64(i+1) / float64(total) * 100}
	}
	return out
}

// AtOrBelow returns the percentage of queries answered within d.
func (r *LatencyRecorder) AtOrBelow(d time.Duration) float64 {
	total := len(r.samples) + r.misses
	if total == 0 {
		return 0
	}
	n := 0
	for _, s := range r.samples {
		if s <= d {
			n++
		}
	}
	return float64(n) / float64(total) * 100
}

// RenderCDFTable formats several recorders as the series of a Figure-1
// style plot sampled at the given grid, one column per series.
func RenderCDFTable(grid []time.Duration, series map[string]*LatencyRecorder, order []string) string {
	var sb strings.Builder
	sb.WriteString("latency")
	for _, name := range order {
		fmt.Fprintf(&sb, "\t%s", name)
	}
	sb.WriteByte('\n')
	for _, d := range grid {
		fmt.Fprintf(&sb, "%v", d)
		for _, name := range order {
			fmt.Fprintf(&sb, "\t%5.1f%%", series[name].AtOrBelow(d))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Tally is a labelled counter set, used for bandwidth and message
// accounting in the ablation benches.
type Tally struct {
	counts map[string]uint64
	order  []string
}

// NewTally creates an empty tally.
func NewTally() *Tally { return &Tally{counts: make(map[string]uint64)} }

// Add increments a label.
func (t *Tally) Add(label string, n uint64) {
	if _, ok := t.counts[label]; !ok {
		t.order = append(t.order, label)
	}
	t.counts[label] += n
}

// Get returns a label's count.
func (t *Tally) Get(label string) uint64 { return t.counts[label] }

// String renders the tally in insertion order.
func (t *Tally) String() string {
	var sb strings.Builder
	for _, label := range t.order {
		fmt.Fprintf(&sb, "%-30s %12d\n", label, t.counts[label])
	}
	return sb.String()
}
