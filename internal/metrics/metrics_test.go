package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestCDFWithMisses(t *testing.T) {
	var r LatencyRecorder
	r.Record(1 * time.Second)
	r.Record(2 * time.Second)
	r.Record(3 * time.Second)
	r.Miss() // 4 queries, one unanswered: curve tops out at 75%
	cdf := r.CDF()
	if len(cdf) != 3 {
		t.Fatalf("points = %d", len(cdf))
	}
	if cdf[2].Percent != 75 {
		t.Errorf("final percent = %v, want 75 (miss plateau)", cdf[2].Percent)
	}
	if cdf[0].Percent != 25 {
		t.Errorf("first percent = %v", cdf[0].Percent)
	}
}

func TestAtOrBelow(t *testing.T) {
	var r LatencyRecorder
	for _, d := range []time.Duration{1, 2, 3, 4} {
		r.Record(d * time.Second)
	}
	if got := r.AtOrBelow(2 * time.Second); got != 50 {
		t.Errorf("AtOrBelow(2s) = %v", got)
	}
	if got := r.AtOrBelow(10 * time.Second); got != 100 {
		t.Errorf("AtOrBelow(10s) = %v", got)
	}
	if got := r.AtOrBelow(0); got != 0 {
		t.Errorf("AtOrBelow(0) = %v", got)
	}
}

func TestPercentileWithMisses(t *testing.T) {
	var r LatencyRecorder
	r.Record(10 * time.Millisecond)
	r.Miss()
	if _, ok := r.Percentile(90); ok {
		t.Error("90th percentile should fall in the misses")
	}
	d, ok := r.Percentile(25)
	if !ok || d != 10*time.Millisecond {
		t.Errorf("25th percentile = %v, %v", d, ok)
	}
}

func TestPercentileTable(t *testing.T) {
	ms := time.Millisecond
	record := func(hits []time.Duration, misses int) *LatencyRecorder {
		var r LatencyRecorder
		for _, d := range hits {
			r.Record(d)
		}
		for i := 0; i < misses; i++ {
			r.Miss()
		}
		return &r
	}
	four := []time.Duration{40 * ms, 10 * ms, 30 * ms, 20 * ms} // unsorted on purpose
	cases := []struct {
		name   string
		rec    *LatencyRecorder
		p      float64
		want   time.Duration
		wantOK bool
	}{
		{"p0 no misses", record(four, 0), 0, 10 * ms, true},
		{"p50 no misses", record(four, 0), 50, 30 * ms, true},
		{"p100 no misses is the max sample", record(four, 0), 100, 40 * ms, true},
		{"p0 with misses", record(four, 2), 0, 10 * ms, true},
		{"p50 with misses", record(four, 2), 50, 40 * ms, true},
		{"p100 with misses falls in the misses", record(four, 2), 100, 0, false},
		{"index exactly len(samples), misses cover it", record(four, 4), 50, 0, false},
		{"single sample p100", record([]time.Duration{7 * ms}, 0), 100, 7 * ms, true},
		{"single sample p0", record([]time.Duration{7 * ms}, 0), 0, 7 * ms, true},
		{"all misses", record(nil, 3), 50, 0, false},
		{"empty", record(nil, 0), 50, 0, false},
	}
	for _, tc := range cases {
		got, ok := tc.rec.Percentile(tc.p)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("%s: Percentile(%v) = (%v, %v), want (%v, %v)",
				tc.name, tc.p, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestEmptyRecorder(t *testing.T) {
	var r LatencyRecorder
	if cdf := r.CDF(); cdf != nil {
		t.Error("empty CDF should be nil")
	}
	if _, ok := r.Percentile(50); ok {
		t.Error("empty percentile should fail")
	}
	if r.AtOrBelow(time.Second) != 0 {
		t.Error("empty AtOrBelow should be 0")
	}
}

func TestRenderCDFTable(t *testing.T) {
	a, b := &LatencyRecorder{}, &LatencyRecorder{}
	a.Record(1 * time.Second)
	b.Record(5 * time.Second)
	b.Miss()
	out := RenderCDFTable(
		[]time.Duration{2 * time.Second, 10 * time.Second},
		map[string]*LatencyRecorder{"pier": a, "gnutella": b},
		[]string{"pier", "gnutella"},
	)
	if !strings.Contains(out, "pier") || !strings.Contains(out, "gnutella") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Errorf("pier series should reach 100%%:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("gnutella series should plateau at 50%%:\n%s", out)
	}
}

func TestTally(t *testing.T) {
	ta := NewTally()
	ta.Add("msgs", 10)
	ta.Add("bytes", 100)
	ta.Add("msgs", 5)
	if ta.Get("msgs") != 15 {
		t.Errorf("msgs = %d", ta.Get("msgs"))
	}
	out := ta.String()
	if !strings.Contains(out, "msgs") || !strings.Contains(out, "15") {
		t.Errorf("render: %s", out)
	}
	// Insertion order preserved.
	if strings.Index(out, "msgs") > strings.Index(out, "bytes") {
		t.Error("order not preserved")
	}
}
