package complist

import "testing"

type entry struct {
	id   int
	dead bool
}

func (e *entry) Dead() bool { return e.dead }

func kill(l *List[*entry], e *entry) {
	if e.dead {
		return
	}
	e.dead = true
	l.NoteDead()
}

func visit(l *List[*entry]) []int {
	var ids []int
	l.Each(func(e *entry) { ids = append(ids, e.id) })
	return ids
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOrderAndSkipDead(t *testing.T) {
	var l List[*entry]
	es := []*entry{{id: 1}, {id: 2}, {id: 3}}
	for _, e := range es {
		l.Add(e)
	}
	kill(&l, es[1])
	if got := visit(&l); !eq(got, []int{1, 3}) {
		t.Fatalf("visit order: %v", got)
	}
	if l.Live() != 2 {
		t.Fatalf("live: %d", l.Live())
	}
}

func TestCompactionReclaims(t *testing.T) {
	var l List[*entry]
	var es []*entry
	for i := 0; i < 100; i++ {
		e := &entry{id: i}
		es = append(es, e)
		l.Add(e)
	}
	for i := 0; i < 99; i++ {
		kill(&l, es[i])
	}
	if l.Len() > 2 {
		t.Fatalf("dead entries not compacted: len=%d", l.Len())
	}
	if got := visit(&l); !eq(got, []int{99}) {
		t.Fatalf("survivor: %v", got)
	}
}

func TestCancelDuringDispatchSkipsInFlight(t *testing.T) {
	var l List[*entry]
	a, b, c := &entry{id: 1}, &entry{id: 2}, &entry{id: 3}
	l.Add(a)
	l.Add(b)
	l.Add(c)
	var ids []int
	l.Each(func(e *entry) {
		ids = append(ids, e.id)
		if e == a {
			kill(&l, c) // cancelled before being visited: must be skipped
		}
	})
	if !eq(ids, []int{1, 2}) {
		t.Fatalf("dispatch visited %v", ids)
	}
}

func TestAddDuringDispatchMissesInFlight(t *testing.T) {
	var l List[*entry]
	a := &entry{id: 1}
	l.Add(a)
	var ids []int
	l.Each(func(e *entry) {
		ids = append(ids, e.id)
		if e == a {
			l.Add(&entry{id: 2})
		}
	})
	if !eq(ids, []int{1}) {
		t.Fatalf("in-flight dispatch saw late entry: %v", ids)
	}
	if got := visit(&l); !eq(got, []int{1, 2}) {
		t.Fatalf("next dispatch: %v", got)
	}
}

func TestCompactionDeferredWhileNested(t *testing.T) {
	var l List[*entry]
	var es []*entry
	for i := 0; i < 10; i++ {
		e := &entry{id: i}
		es = append(es, e)
		l.Add(e)
	}
	l.Each(func(outer *entry) {
		if outer.id != 0 {
			return
		}
		// Nested dispatch with most entries dying around it: the slice
		// must not move while either loop is on the stack.
		for i := 1; i < 9; i++ {
			kill(&l, es[i])
		}
		if l.Len() != 10 {
			t.Fatalf("compacted during dispatch: len=%d", l.Len())
		}
		l.Each(func(*entry) {})
		if l.Len() != 10 {
			t.Fatalf("nested Each triggered compaction: len=%d", l.Len())
		}
	})
	if l.Len() > 4 {
		t.Fatalf("compaction did not run at unwind: len=%d", l.Len())
	}
	if got := visit(&l); !eq(got, []int{0, 9}) {
		t.Fatalf("survivors: %v", got)
	}
}

func TestOnEmptyFiresExactlyOnce(t *testing.T) {
	var l List[*entry]
	fired := 0
	l.OnEmpty(func() { fired++ })
	a, b := &entry{id: 1}, &entry{id: 2}
	l.Add(a)
	l.Add(b)
	kill(&l, a)
	if fired != 0 {
		t.Fatalf("fired with a live entry left")
	}
	kill(&l, b)
	if fired != 1 || !l.Retired() {
		t.Fatalf("fired=%d retired=%v", fired, l.Retired())
	}
	// Idempotent: late NoteDead must not re-fire.
	l.NoteDead()
	if fired != 1 {
		t.Fatalf("re-fired after retirement: %d", fired)
	}
}

func TestOnEmptyDeferredUntilDispatchUnwinds(t *testing.T) {
	var l List[*entry]
	fired := false
	l.OnEmpty(func() { fired = true })
	a := &entry{id: 1}
	l.Add(a)
	l.Each(func(e *entry) {
		kill(&l, e)
		if fired {
			t.Fatalf("OnEmpty fired inside dispatch")
		}
	})
	if !fired {
		t.Fatalf("OnEmpty did not fire at unwind")
	}
}
