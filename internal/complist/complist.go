// Package complist provides the deferred-compaction dispatch list shared
// by PIER's multi-tenant registries: the overlay newData subscriber list,
// the query processor's table-bus shares, and the flush wheel's slots.
// All three have the same population profile — hundreds of entries, O(1)
// add, O(1) idempotent remove, deterministic in-order dispatch that may
// re-enter the list — and all three grew identical hand-rolled copies of
// the mark-dead + compact machinery. This is the one copy.
//
// Semantics (pinned by the call sites' tests):
//
//   - Entries are marked dead by their owner (the Dead method reports the
//     flag); the list is told via NoteDead and reclaims storage once dead
//     entries outnumber live ones, so churn never leaves a permanent hole.
//   - Each dispatches in insertion order and snapshots the length on
//     entry: entries added during a dispatch are not visited for the
//     in-flight item; entries marked dead mid-dispatch are skipped if not
//     yet visited.
//   - Dispatch may nest. Compaction — and the terminal OnEmpty callback —
//     are deferred until the outermost Each unwinds, so an in-flight
//     iteration never sees the slice move under it.
//   - When the last live entry dies, the list retires: OnEmpty fires
//     exactly once (owners cancel timers/subscriptions and unlink the
//     list there) and later NoteDead calls are no-ops.
package complist

// Entry is the element constraint: the owner keeps the dead flag on the
// entry itself (cancellation must be O(1) without a list scan).
type Entry interface {
	Dead() bool
}

// List is one compacting dispatch list. The zero value is ready to use.
type List[E Entry] struct {
	items   []E
	deadN   int
	depth   int // >0 while an Each is on the stack
	onEmpty func()
	retired bool
}

// OnEmpty registers the terminal callback, invoked exactly once when the
// last live entry dies (outside any dispatch).
func (l *List[E]) OnEmpty(fn func()) { l.onEmpty = fn }

// Add appends an entry. Entries added during a dispatch are not visited
// for the in-flight item.
func (l *List[E]) Add(e E) { l.items = append(l.items, e) }

// Len returns the physical entry count (live + not-yet-compacted dead).
func (l *List[E]) Len() int { return len(l.items) }

// Live returns the live entry count.
func (l *List[E]) Live() int { return len(l.items) - l.deadN }

// Retired reports whether the list has emptied and fired OnEmpty.
func (l *List[E]) Retired() bool { return l.retired }

// Each invokes fn on every live entry in insertion order. Re-entrant; see
// the package docs for the snapshot and deferral rules.
func (l *List[E]) Each(fn func(E)) {
	l.depth++
	limit := len(l.items)
	for i := 0; i < limit; i++ {
		if e := l.items[i]; !e.Dead() {
			fn(e)
		}
	}
	l.depth--
	l.compact()
}

// NoteDead records that one entry's dead flag was just set and compacts
// or retires if due. The owner flips the flag before calling.
func (l *List[E]) NoteDead() {
	l.deadN++
	l.compact()
}

// compact reclaims dead entries once they outnumber live ones and retires
// the list when nobody is left. Deferred while a dispatch is on the stack.
func (l *List[E]) compact() {
	if l.depth > 0 || l.retired {
		return
	}
	if len(l.items)-l.deadN == 0 {
		l.retired = true
		if l.onEmpty != nil {
			l.onEmpty()
		}
		return
	}
	if l.deadN*2 <= len(l.items) {
		return
	}
	kept := l.items[:0]
	for _, e := range l.items {
		if !e.Dead() {
			kept = append(kept, e)
		}
	}
	var zero E
	for i := len(kept); i < len(l.items); i++ {
		l.items[i] = zero // release for GC
	}
	l.items = kept
	l.deadN = 0
}
