package wire

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.U16(65535)
	w.U32(1 << 30)
	w.U64(1 << 60)
	w.I64(-42)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte{1, 2, 3})
	w.String("hello")
	ts := time.Date(2005, 1, 5, 12, 0, 0, 123, time.UTC)
	w.Time(ts)
	w.Duration(90 * time.Second)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool #1 = false")
	}
	if got := r.Bool(); got {
		t.Error("Bool #2 = true")
	}
	if got := r.Bytes32(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Time(); !got.Equal(ts) {
		t.Errorf("Time = %v, want %v", got, ts)
	}
	if got := r.Duration(); got != 90*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestTruncatedReadsAreSticky(t *testing.T) {
	w := NewWriter(8)
	w.U32(99)
	r := NewReader(w.Bytes())
	_ = r.U64() // needs 8 bytes, only 4 available
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Subsequent reads stay zero and do not panic.
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %d, want 0", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("post-error String = %q, want empty", got)
	}
}

func TestOversizedLengthPrefixRejected(t *testing.T) {
	w := NewWriter(8)
	w.U32(1 << 31) // claims 2GB payload
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); got != nil {
		t.Errorf("Bytes32 = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("want oversize error")
	}
}

func TestEmptyStringAndBytes(t *testing.T) {
	w := NewWriter(8)
	w.String("")
	w.Bytes32(nil)
	r := NewReader(w.Bytes())
	if got := r.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes32(); len(got) != 0 {
		t.Errorf("Bytes32 = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyU64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(8)
		w.U64(v)
		return NewReader(w.Bytes()).U64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		w := NewWriter(len(s) + 4)
		w.String(s)
		r := NewReader(w.Bytes())
		return r.String() == s && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyF64RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		w := NewWriter(8)
		w.F64(v)
		got := NewReader(w.Bytes()).F64()
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMixedSequenceRoundTrip(t *testing.T) {
	f := func(a uint32, b string, c int64, d bool, e []byte) bool {
		w := NewWriter(32)
		w.U32(a)
		w.String(b)
		w.I64(c)
		w.Bool(d)
		w.Bytes32(e)
		r := NewReader(w.Bytes())
		ga, gb, gc, gd, ge := r.U32(), r.String(), r.I64(), r.Bool(), r.Bytes32()
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		if ga != a || gb != b || gc != c || gd != d {
			return false
		}
		if len(ge) != len(e) {
			return false
		}
		for i := range e {
			if ge[i] != e[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRandomBytesNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		r := NewReader(b)
		// Exercise every accessor; none may panic regardless of input.
		_ = r.U8()
		_ = r.U16()
		_ = r.U32()
		_ = r.U64()
		_ = r.Bytes32()
		_ = r.String()
		_ = r.Time()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// PatchU32 supports the reserve-then-patch idiom used by checkpoint
// encoders whose element counts are only known after encoding.
func TestPatchU32ReserveThenPatch(t *testing.T) {
	w := NewWriter(32)
	w.String("hdr")
	pos := w.Len()
	w.U32(0)
	for i := 0; i < 3; i++ {
		w.U64(uint64(i))
	}
	w.PatchU32(pos, 3)

	r := NewReader(w.Bytes())
	if got := r.String(); got != "hdr" {
		t.Fatalf("header = %q", got)
	}
	if got := r.U32(); got != 3 {
		t.Fatalf("patched count = %d, want 3", got)
	}
	for i := uint64(0); i < 3; i++ {
		if got := r.U64(); got != i {
			t.Fatalf("element %d = %d", i, got)
		}
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("trailing state: err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestPatchU32OutOfRangePanics(t *testing.T) {
	w := NewWriter(8)
	w.U16(7)
	defer func() {
		if recover() == nil {
			t.Fatal("PatchU32 past the buffer end did not panic")
		}
	}()
	w.PatchU32(0, 1) // only 2 bytes written
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.String("first")
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.U32(42)
	r := NewReader(w.Bytes())
	if got := r.U32(); got != 42 || r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("post-Reset encode corrupted: %d err=%v rem=%d", got, r.Err(), r.Remaining())
	}
}
