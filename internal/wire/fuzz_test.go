package wire

import (
	"errors"
	"testing"
	"time"
)

// FuzzWireReader feeds arbitrary byte strings through a Reader and
// checks the decoding contract against hostile frames: no panics, every
// failure classified as ErrTruncated or ErrOversized, and error-sticky
// semantics (after the first failure all reads return zero values and
// the error never changes).
func FuzzWireReader(f *testing.F) {
	// A well-formed message exercising every field type.
	w := NewWriter(64)
	w.U8(1)
	w.U16(2)
	w.U32(3)
	w.U64(4)
	w.I64(-5)
	w.F64(6.5)
	w.Bool(true)
	w.String("namespace")
	w.Bytes32([]byte("payload"))
	w.Time(time.Unix(1100000000, 42).UTC())
	w.Duration(30 * time.Second)
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix
	f.Add([]byte{0, 0, 0, 9, 'a', 'b'})   // prefix beyond input
	f.Add(w.Bytes()[:w.Len()-3])          // truncated tail
	f.Add([]byte{0, 0, 0, 0})             // empty string then EOF

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		// Walk the same field schedule the seed used; a hostile frame
		// may fail at any point in it.
		_ = r.U8()
		_ = r.U16()
		_ = r.U32()
		_ = r.U64()
		_ = r.I64()
		_ = r.F64()
		_ = r.Bool()
		_ = r.String()
		_ = r.Bytes32()
		_ = r.Time()
		_ = r.Duration()
		if r.Remaining() < 0 {
			t.Fatalf("Remaining() = %d went negative", r.Remaining())
		}
		err := r.Err()
		if err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) {
			t.Fatalf("error is neither ErrTruncated nor ErrOversized: %v", err)
		}
		if err != nil {
			// Error-sticky: further reads yield zero values and the
			// original error survives.
			if got := r.U64(); got != 0 {
				t.Fatalf("read after error returned %d, want 0", got)
			}
			if s := r.String(); s != "" {
				t.Fatalf("read after error returned %q, want empty", s)
			}
			if !errors.Is(r.Err(), ErrTruncated) && !errors.Is(r.Err(), ErrOversized) {
				t.Fatalf("sticky error mutated to: %v", r.Err())
			}
		}
	})
}

// FuzzWireRoundTrip drives the Writer with fuzz-chosen values and
// checks the Reader recovers them exactly.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(99), "hello", []byte("world"), int64(-40))
	f.Add(uint8(0), uint64(0), "", []byte{}, int64(0))
	f.Fuzz(func(t *testing.T, u8 uint8, u64 uint64, s string, b []byte, i64 int64) {
		w := NewWriter(16)
		w.U8(u8)
		w.U64(u64)
		w.String(s)
		w.Bytes32(b)
		w.I64(i64)
		r := NewReader(w.Bytes())
		if got := r.U8(); got != u8 {
			t.Fatalf("U8: %d != %d", got, u8)
		}
		if got := r.U64(); got != u64 {
			t.Fatalf("U64: %d != %d", got, u64)
		}
		if got := r.String(); got != s {
			t.Fatalf("String: %q != %q", got, s)
		}
		if got := r.Bytes32(); string(got) != string(b) {
			t.Fatalf("Bytes32: %q != %q", got, b)
		}
		if got := r.I64(); got != i64 {
			t.Fatalf("I64: %d != %d", got, i64)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("round trip errored: %v", err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}
