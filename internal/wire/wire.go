// Package wire provides the compact binary encoding used for every
// message PIER puts on the network and for stored tuples. PIER's core
// design centers on low-latency processing of large volumes of network
// messages (§2.1.1), so the format is a simple length-delimited scheme
// with no reflection and no allocation beyond the destination buffer:
// fixed-width big-endian integers and length-prefixed byte strings.
//
// Writer appends values to a growing buffer; Reader consumes them in the
// same order. Reader is error-sticky: after the first malformed field,
// all subsequent reads return zero values and Err reports the failure.
// This style keeps handler code linear — decode every field, then check
// Err once — which matters in an event-driven system where handlers must
// stay short (§3.1.2).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrTruncated is reported when a Reader runs out of bytes mid-field.
var ErrTruncated = errors.New("wire: truncated message")

// ErrOversized is reported when a length prefix exceeds the remaining
// input, guarding against corrupt or hostile frames.
var ErrOversized = errors.New("wire: length prefix exceeds input")

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded message. The slice aliases the Writer's
// internal buffer; the caller must not keep writing through the Writer
// while holding it.
//
// The scratch-writer idiom on hot send paths leans on this aliasing
// plus the vri.Runtime.Send contract (payloads are consumed
// synchronously): encode into a long-lived Writer, hand Bytes straight
// to Send, then Reset and reuse the same buffer for the next message —
// zero allocation per message. The handoff is strict: bytes that must
// survive an asynchronous boundary (retained in a callback, a struct,
// or a pending-request table) must be copied or encoded into their own
// Writer, because the next Reset invalidates them.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the Writer to empty, retaining the allocated buffer
// so one Writer can encode a sequence of messages without reallocating.
// Slices previously returned by Bytes are invalidated.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// I64 appends a big-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a 4-byte length prefix followed by b.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// PatchU32 overwrites the 4 bytes at offset off with a big-endian
// uint32. It supports the reserve-then-patch idiom for counts that are
// only known after their elements were encoded (e.g. checkpoint object
// tables): record Len(), append U32(0), encode the elements, then patch.
// off must have been obtained from Len() before appending the
// placeholder; patching a range not fully inside the buffer panics.
func (w *Writer) PatchU32(off int, v uint32) {
	if off < 0 || off+4 > len(w.buf) {
		panic(fmt.Sprintf("wire: PatchU32 at %d outside buffer of %d bytes", off, len(w.buf)))
	}
	binary.BigEndian.PutUint32(w.buf[off:], v)
}

// Time appends a timestamp with nanosecond precision.
func (w *Writer) Time(t time.Time) { w.I64(t.UnixNano()) }

// Duration appends a time.Duration.
func (w *Writer) Duration(d time.Duration) { w.I64(int64(d)) }

// Reader consumes an encoded message produced by Writer.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b for decoding. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.b)))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean byte; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 reads a 4-byte-length-prefixed byte string. The returned slice
// aliases the input buffer.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n) > r.Remaining() {
		r.fail(fmt.Errorf("%w: prefix %d, remaining %d", ErrOversized, n, r.Remaining()))
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes32()) }

// Time reads a nanosecond-precision timestamp.
func (r *Reader) Time() time.Time {
	ns := r.I64()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Duration reads a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }
